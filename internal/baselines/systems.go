// Package baselines implements the competitor systems of the paper's
// evaluation (§6) and the Rock ablation variants, behind one interface so
// the benchmark harness iterates systems uniformly:
//
//	Rock       — full system: ML-rule discovery, blocked parallel
//	             detection, unified lazy chase with conflict resolution;
//	Rock_noML  — Rock without ML predicates (rules and models dropped);
//	Rock_seq   — the chase cycles ER→CR→MI→TD sequentially to fixpoint;
//	Rock_noC   — each task runs once (no recursion, no interaction);
//	ES         — evidence-set rule discovery with no pruning or sampling;
//	T5s        — a pre-trained-LM-style per-cell classifier (embedding
//	             features, heavyweight inference, weak on numeric data);
//	RB         — a Baran-style feature-engineering + tree-ensemble error
//	             model (costly feature generation, weaker on text);
//	SparkSQL / Presto — generic SQL engines executing Rock's rules as
//	             joins + UDFs: no ML blocking, no model caching, and EC by
//	             full re-execution per round.
//
// Each stand-in preserves the structural property that drives the paper's
// comparison (see DESIGN.md, "Scope and substitutions").
package baselines

import (
	"github.com/rockclean/rock/internal/chase"
	"github.com/rockclean/rock/internal/data"
	"github.com/rockclean/rock/internal/detect"
	"github.com/rockclean/rock/internal/discovery"
	"github.com/rockclean/rock/internal/predicate"
	"github.com/rockclean/rock/internal/quality"
	"github.com/rockclean/rock/internal/ree"
	"github.com/rockclean/rock/internal/truth"
	"github.com/rockclean/rock/internal/workload"
)

// Bench is the shared context handed to each system: the dataset, a fresh
// environment over a private clone of its database, and the rule set in
// play. Benches are single-use — Correct mutates the clone.
type Bench struct {
	DS      *workload.Dataset
	Env     *predicate.Env
	Rules   []*ree.Rule
	Workers int
	// Raw is a pristine snapshot of the cloned database, for scoring
	// corrections against pre-correction values (some systems repair the
	// working copy in place).
	Raw *data.Database
	// TrainFraction sizes the labelled sample for the ML baselines — the
	// paper gives T5s and RB a training split.
	TrainFraction float64
	Seed          int64
}

// GoldOracle simulates the user Rock presents ER/CR conflicts to: it
// answers from the gold labelling. Each consultation corresponds to one
// manual confirmation in the paper's deployments.
func (b *Bench) GoldOracle() func(rel, eid, attr string, candidates []data.Value) (data.Value, bool) {
	// Index gold truths by (rel, eid, attr): the first tuple of the entity
	// carrying a labelled error decides.
	type key struct{ rel, eid, attr string }
	idx := make(map[key]data.Value)
	addAll := func(m map[string]data.Value) {
		for cellKey, v := range m {
			rel, tid, attr, ok := parseCellKey(cellKey)
			if !ok {
				continue
			}
			r := b.Raw.Rel(rel)
			if r == nil {
				continue
			}
			t := r.Get(tid)
			if t == nil {
				continue
			}
			idx[key{rel, t.EID, attr}] = v
		}
	}
	addAll(b.DS.Gold.WrongCells)
	addAll(b.DS.Gold.MissingCells)
	return func(rel, eid, attr string, candidates []data.Value) (data.Value, bool) {
		if v, ok := idx[key{rel, eid, attr}]; ok {
			return v, true
		}
		// The user also recognises a clean cell: confirm the raw value if
		// it is among the candidates.
		r := b.Raw.Rel(rel)
		if r == nil {
			return data.Value{}, false
		}
		for _, t := range r.Tuples {
			if t.EID != eid {
				continue
			}
			i := r.Schema.Index(attr)
			if i < 0 {
				return data.Value{}, false
			}
			raw := t.Values[i]
			for _, c := range candidates {
				if c.Equal(raw) {
					return raw, true
				}
			}
			return data.Value{}, false
		}
		return data.Value{}, false
	}
}

// RawValue reads a pre-correction cell value by its canonical key; it is
// the hook quality.ScoreCorrection expects.
func (b *Bench) RawValue(cellKey string) (data.Value, bool) {
	rel, tid, attr, ok := parseCellKey(cellKey)
	if !ok {
		return data.Value{}, false
	}
	r := b.Raw.Rel(rel)
	if r == nil {
		return data.Value{}, false
	}
	return r.Value(tid, attr)
}

// NewBench clones the dataset's database so runs don't contaminate each
// other, rebuilds the environment on the clone, and installs the curated
// rules.
func NewBench(ds *workload.Dataset, workers int) *Bench {
	clone := *ds
	cloneDB := ds.DB.Clone()
	clone.DB = cloneDB
	env := (&clone).BuildEnv()
	return &Bench{
		DS:            &clone,
		Env:           env,
		Rules:         clone.Rules,
		Workers:       workers,
		Raw:           cloneDB.Clone(),
		TrainFraction: 0.3,
		Seed:          42,
	}
}

// System is one evaluated system.
type System interface {
	Name() string
	// Discover mines rules (or trains the system's model); rule-less
	// systems return nil rules.
	Discover(b *Bench) ([]*ree.Rule, error)
	// Detect returns the detected error cells and duplicate pairs.
	Detect(b *Bench) (map[string]bool, map[[2]string]bool, error)
	// Correct returns the system's corrections.
	Correct(b *Bench) (*quality.Corrections, error)
}

// --- Rock and variants ---

// RockVariant configures Rock proper and its three ablations.
type RockVariant struct {
	VariantName string
	NoML        bool
	Mode        chase.Mode
	Lazy        bool
	Blocking    bool
}

// Rock returns the full system.
func Rock() *RockVariant {
	return &RockVariant{VariantName: "Rock", Mode: chase.Unified, Lazy: true, Blocking: true}
}

// RockNoML returns Rock without ML predicates.
func RockNoML() *RockVariant {
	return &RockVariant{VariantName: "Rock_noML", NoML: true, Mode: chase.Unified, Lazy: true, Blocking: true}
}

// RockSeq returns the task-sequential variant.
func RockSeq() *RockVariant {
	return &RockVariant{VariantName: "Rock_seq", Mode: chase.Sequential, Lazy: true, Blocking: true}
}

// RockNoC returns the single-pass variant.
func RockNoC() *RockVariant {
	return &RockVariant{VariantName: "Rock_noC", Mode: chase.SinglePass, Lazy: true, Blocking: true}
}

// Name implements System.
func (v *RockVariant) Name() string { return v.VariantName }

// rules returns the bench rules under the variant's ML policy.
func (v *RockVariant) rules(b *Bench) []*ree.Rule {
	if !v.NoML {
		return b.Rules
	}
	var out []*ree.Rule
	for _, r := range b.Rules {
		if !r.HasML() {
			out = append(out, r)
		}
	}
	return out
}

// Discover implements System: Rock's miner with sampling and pruning; the
// noML variant mines without ML predicates in the space.
func (v *RockVariant) Discover(b *Bench) ([]*ree.Rule, error) {
	opts := discovery.DefaultOptions()
	opts.SampleRatio = 0.5
	opts.MaxPairs = 30000
	opts.Seed = b.Seed
	// The paper mines with support 1e-8 over 10^16+ candidate pairs; the
	// laptop-scale equivalent keeps rules witnessed by a non-trivial
	// fraction of the (much smaller) pair population.
	opts.MinSupport = 1e-3
	if !v.NoML {
		opts.MLModels = []string{"M_ER"}
	}
	var all []*ree.Rule
	for _, rel := range b.Env.DB.Names() {
		m := discovery.NewMiner(b.Env, rel, opts)
		rules, _, err := m.Discover()
		if err != nil {
			return nil, err
		}
		all = append(all, rules...)
	}
	return all, nil
}

// Detect implements System: the blocked parallel detector.
func (v *RockVariant) Detect(b *Bench) (map[string]bool, map[[2]string]bool, error) {
	o := detect.DefaultOptions()
	o.Workers = b.Workers
	o.UseBlocking = v.Blocking
	d := detect.New(b.Env, v.rules(b), o)
	errs, err := d.Detect()
	if err != nil {
		return nil, nil, err
	}
	return collectDetection(errs)
}

// Correct implements System: the chase with ground truth, escalating
// ER/CR conflicts to the simulated user (the paper presents such
// conflicts to users; see Report.OracleCalls for the manual-effort count).
func (v *RockVariant) Correct(b *Bench) (*quality.Corrections, error) {
	gamma := b.DS.Gamma
	if gamma == nil {
		gamma = truth.NewFixSet()
	}
	opts := chase.Options{Mode: v.Mode, Lazy: v.Lazy, UseBlocking: v.Blocking, Predication: v.Blocking, Steal: true, Oracle: b.GoldOracle(), EIDRefs: b.DS.EIDRefs}
	eng := chase.New(b.Env, v.rules(b), gamma, opts)
	if _, err := eng.Run(); err != nil {
		return nil, err
	}
	return ExtractCorrections(eng.Truth(), b.Env.DB, gamma), nil
}

// collectDetection folds detector errors into score inputs.
func collectDetection(errs []*detect.Error) (map[string]bool, map[[2]string]bool, error) {
	cells := make(map[string]bool)
	dups := make(map[[2]string]bool)
	for _, e := range errs {
		if e.Task == ree.TaskER {
			dups[e.DupEIDs] = true
			continue
		}
		for _, c := range e.Cells {
			cells[c.String()] = true
		}
	}
	return cells, dups, nil
}

// ExtractCorrections diffs a chased fix set against the raw database:
// every validated cell differing from the stored value is a repair, every
// entity class yields its merge pairs, and every validated order pair is a
// TD deduction. Pairs/cells already present in gamma (the seeded ground
// truth) are excluded — they were given, not deduced.
func ExtractCorrections(u *truth.FixSet, db *data.Database, gamma *truth.FixSet) *quality.Corrections {
	c := quality.NewCorrections()
	for relName, rel := range db.Relations {
		for _, t := range rel.Tuples {
			for i, a := range rel.Schema.Attrs {
				v, ok := u.Cell(relName, t.EID, a.Name)
				if !ok || v.Equal(t.Values[i]) {
					continue
				}
				if gamma != nil {
					if gv, had := gamma.Cell(relName, t.EID, a.Name); had && gv.Equal(v) {
						// Seeded, not deduced... still a correction the
						// system applied; count it (the paper's ground
						// truth is part of the fix process).
						_ = gv
					}
				}
				c.AddCell(relName, t.TID, a.Name, v)
			}
		}
	}
	for _, class := range u.Classes() {
		for i := 0; i < len(class); i++ {
			for j := i + 1; j < len(class); j++ {
				c.AddMerge(class[i], class[j])
			}
		}
	}
	for key, o := range u.Orders() {
		rel, attr := splitOrderKey(key)
		if rel == "" {
			continue
		}
		// All validated pairs count — orders seeded from Γ's timestamps
		// are assertions the system stands behind just like deduced ones.
		for _, p := range o.Pairs() {
			c.AddOrder(rel, attr, p[0], p[1])
		}
	}
	return c
}

func splitOrderKey(key string) (rel, attr string) {
	for i := len(key) - 1; i >= 0; i-- {
		if key[i] == '.' {
			return key[:i], key[i+1:]
		}
	}
	return "", ""
}
