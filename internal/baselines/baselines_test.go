package baselines

import (
	"testing"

	"github.com/rockclean/rock/internal/quality"
	"github.com/rockclean/rock/internal/workload"
)

func bankBench(t *testing.T, workers int) *Bench {
	t.Helper()
	ds := workload.Bank(workload.Config{N: 250, Seed: 9})
	return NewBench(ds, workers)
}

func salesBench(t *testing.T) *Bench {
	t.Helper()
	ds := workload.Sales(workload.Config{N: 250, Seed: 9})
	return NewBench(ds, 4)
}

func detectF1(t *testing.T, sys System, b *Bench) float64 {
	t.Helper()
	cells, dups, err := sys.Detect(b)
	if err != nil {
		t.Fatalf("%s detect: %v", sys.Name(), err)
	}
	return quality.ScoreDetection(b.DS.Gold, cells, dups).F1()
}

func TestRockDetectionBeatsBaselines(t *testing.T) {
	rock := detectF1(t, Rock(), bankBench(t, 4))
	t5 := detectF1(t, NewT5s(), bankBench(t, 4))
	rb := detectF1(t, NewRB(), bankBench(t, 4))
	t.Logf("detection F1: Rock=%.3f T5s=%.3f RB=%.3f", rock, t5, rb)
	if rock < 0.7 {
		t.Errorf("Rock detection F1 too low: %.3f", rock)
	}
	if rock <= t5 || rock <= rb {
		t.Errorf("Rock must beat ML baselines: rock=%.3f t5=%.3f rb=%.3f", rock, t5, rb)
	}
}

func TestRockNoMLLosesAccuracy(t *testing.T) {
	full := detectF1(t, Rock(), bankBench(t, 4))
	noml := detectF1(t, RockNoML(), bankBench(t, 4))
	t.Logf("detection F1: Rock=%.3f Rock_noML=%.3f", full, noml)
	if noml >= full {
		t.Errorf("dropping ML rules must hurt: %.3f vs %.3f", noml, full)
	}
}

func TestSQLEngineMatchesRockAccuracyOnDetection(t *testing.T) {
	// SparkSQL/Presto run the same rules, so detection quality matches
	// Rock; only cost differs (Exp-2 measures their time, not F1).
	b1 := bankBench(t, 4)
	rockCells, rockDups, err := Rock().Detect(b1)
	if err != nil {
		t.Fatal(err)
	}
	b2 := bankBench(t, 4)
	sqlCells, sqlDups, err := NewSparkSQL().Detect(b2)
	if err != nil {
		t.Fatal(err)
	}
	f1Rock := quality.ScoreDetection(b1.DS.Gold, rockCells, rockDups).F1()
	f1SQL := quality.ScoreDetection(b2.DS.Gold, sqlCells, sqlDups).F1()
	// Blocking may lose a candidate pair or two; allow a small gap.
	if f1SQL < f1Rock-0.1 || f1SQL > f1Rock+0.1 {
		t.Errorf("same rules should give similar F1: rock=%.3f sql=%.3f", f1Rock, f1SQL)
	}
}

func TestRockCorrectionBeatsBaselines(t *testing.T) {
	score := func(sys System) quality.PRF {
		b := bankBench(t, 4)
		corr, err := sys.Correct(b)
		if err != nil {
			t.Fatalf("%s: %v", sys.Name(), err)
		}
		return quality.ScoreCorrection(b.DS.Gold, corr, b.RawValue).Overall()
	}
	rock := score(Rock())
	t5 := score(NewT5s())
	rb := score(NewRB())
	t.Logf("correction F1: Rock=%.3f T5s=%.3f RB=%.3f", rock.F1(), t5.F1(), rb.F1())
	if rock.F1() < 0.7 {
		t.Errorf("Rock correction F1 too low: %.3f", rock.F1())
	}
	if rock.F1() <= t5.F1() || rock.F1() <= rb.F1() {
		t.Error("Rock must beat ML baselines on correction")
	}
}

func TestRockNoCMissesInteractionFixes(t *testing.T) {
	score := func(sys System) float64 {
		b := bankBench(t, 4)
		corr, err := sys.Correct(b)
		if err != nil {
			t.Fatalf("%s: %v", sys.Name(), err)
		}
		return quality.ScoreCorrection(b.DS.Gold, corr, b.RawValue).Overall().F1()
	}
	full := score(Rock())
	noC := score(RockNoC())
	seq := score(RockSeq())
	t.Logf("correction F1: Rock=%.3f Rock_seq=%.3f Rock_noC=%.3f", full, seq, noC)
	if noC > full {
		t.Errorf("single pass cannot beat the fixpoint: %.3f vs %.3f", noC, full)
	}
	// Rock and Rock_seq both chase to fixpoint: same accuracy (paper:
	// "Rock has the same F-Measure as Rock_seq").
	if seq < full-0.02 || seq > full+0.02 {
		t.Errorf("Rock_seq must match Rock: %.3f vs %.3f", seq, full)
	}
}

func TestSalesTDOnlyRockFamily(t *testing.T) {
	b := salesBench(t)
	corr, err := Rock().Correct(b)
	if err != nil {
		t.Fatal(err)
	}
	s := quality.ScoreCorrection(b.DS.Gold, corr, b.RawValue)
	t.Logf("sales per-task F1: ER=%.3f CR=%.3f MI=%.3f TD=%.3f",
		s.ER.F1(), s.CR.F1(), s.MI.F1(), s.TD.F1())
	if s.TD.TP == 0 {
		t.Error("Rock must deduce temporal orders on Sales")
	}
	if s.CR.F1() < 0.6 {
		t.Errorf("sales CR too weak: %.3f", s.CR.F1())
	}
}

func TestESDiscoversWithoutPruning(t *testing.T) {
	b := bankBench(t, 1)
	es := NewES()
	rules, err := es.Discover(b)
	if err != nil {
		t.Fatal(err)
	}
	if len(rules) == 0 {
		t.Error("ES should still find rules")
	}
	for _, r := range rules {
		if r.HasML() {
			t.Error("ES mines purely, no ML predicates")
		}
	}
}

func TestBenchIsolation(t *testing.T) {
	ds := workload.Bank(workload.Config{N: 100, Seed: 3})
	before := ds.DB.TupleCount()
	b := NewBench(ds, 2)
	if _, err := NewSparkSQL().Correct(b); err != nil {
		t.Fatal(err)
	}
	if ds.DB.TupleCount() != before {
		t.Error("bench mutated the source dataset")
	}
	// The original data values are untouched even though SQL writes in place.
	orig := workload.Bank(workload.Config{N: 100, Seed: 3})
	for relName, rel := range ds.DB.Relations {
		oRel := orig.DB.Rel(relName)
		for i, tp := range rel.Tuples {
			for j := range tp.Values {
				if !tp.Values[j].Equal(oRel.Tuples[i].Values[j]) {
					t.Fatalf("source mutated at %s[%d]", relName, i)
				}
			}
		}
	}
}
