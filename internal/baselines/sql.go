package baselines

import (
	"github.com/rockclean/rock/internal/data"
	"github.com/rockclean/rock/internal/detect"
	"github.com/rockclean/rock/internal/exec"
	"github.com/rockclean/rock/internal/ml"
	"github.com/rockclean/rock/internal/predicate"
	"github.com/rockclean/rock/internal/quality"
	"github.com/rockclean/rock/internal/ree"
)

// SQLEngine is the SparkSQL/Presto stand-in: Rock's learned REE++s are
// "transformed to SQL" and executed as joins with ML predicates as UDFs
// (paper §6, Exp-2/3). Relative to Rock, the engine lacks exactly the
// optimisations the paper credits for the gap:
//
//   - no LSH blocking — ML UDFs evaluate on every joined candidate;
//   - no model-result caching — every UDF call recomputes;
//   - no lazy activation or partial valuations — error correction
//     "iteratively executes SQL until no more fixes are generated",
//     re-scanning everything each round;
//   - no ground truth, no conflict resolution (last write wins), and a
//     single worker.
type SQLEngine struct {
	EngineName string
	// RulesOverride runs these rules instead of the bench's (used by ES).
	RulesOverride []*ree.Rule
	// SinglePass applies consequences once instead of iterating to
	// fixpoint.
	SinglePass bool
	// MaxRounds bounds the EC fixpoint loop.
	MaxRounds int
}

// NewSparkSQL returns the SparkSQL configuration.
func NewSparkSQL() *SQLEngine { return &SQLEngine{EngineName: "SparkSQL"} }

// NewPresto returns the Presto configuration.
func NewPresto() *SQLEngine { return &SQLEngine{EngineName: "Presto"} }

// Name implements System.
func (s *SQLEngine) Name() string { return s.EngineName }

// Discover implements System: SQL engines do not discover rules
// (paper §6: "SparkSQL and Presto do not discover rules/SQL themselves").
func (s *SQLEngine) Discover(b *Bench) ([]*ree.Rule, error) { return nil, nil }

// uncachedEnv strips the model cache: each UDF call pays full inference.
func (s *SQLEngine) uncachedEnv(b *Bench) *predicate.Env {
	env := *b.Env
	models := ml.NewRegistry()
	for _, name := range b.Env.Models.Names() {
		m, err := b.Env.Models.Get(name)
		if err != nil {
			continue
		}
		models.Register(ml.Unwrap(m))
	}
	env.Models = models
	// Strip HER memoisation: every UDF call pays full inference.
	if len(b.Env.HER) > 0 {
		her := make(map[string]*ml.HERMatcher, len(b.Env.HER))
		for k, h := range b.Env.HER {
			her[k] = h.Uncached()
		}
		env.HER = her
	}
	return &env
}

func (s *SQLEngine) rules(b *Bench) []*ree.Rule {
	if s.RulesOverride != nil {
		return s.RulesOverride
	}
	return b.Rules
}

// Detect implements System: evaluate each rule as a join, one worker, no
// blocking, no caching. The resulting violations go through the same
// culprit attribution as Rock's detector — the engines run the same rules,
// so detection quality matches while the cost differs (Exp-2).
func (s *SQLEngine) Detect(b *Bench) (map[string]bool, map[[2]string]bool, error) {
	env := s.uncachedEnv(b)
	ex := exec.New(env)
	var found []*detect.Error
	seen := map[string]bool{}
	for _, r := range s.rules(b) {
		if err := r.Validate(env.DB); err != nil {
			return nil, nil, err
		}
		_, err := ex.Run(r, exec.Options{UseBlocking: false}, func(h *predicate.Valuation) bool {
			ok, evalErr := r.P0.Eval(env, h)
			if evalErr != nil || ok {
				return true
			}
			e := violationError(r, h)
			if !seen[e.Key()] {
				seen[e.Key()] = true
				found = append(found, e)
			}
			return true
		})
		if err != nil {
			return nil, nil, err
		}
	}
	found = detect.AttributeCulpritsFreq(found, detect.CulpritScoreFn(env.DB))
	cells := make(map[string]bool)
	dups := make(map[[2]string]bool)
	for _, e := range found {
		if e.Task == ree.TaskER {
			dups[e.DupEIDs] = true
			continue
		}
		for _, c := range e.Cells {
			cells[c.String()] = true
		}
	}
	return cells, dups, nil
}

func violationError(r *ree.Rule, h *predicate.Valuation) *detect.Error {
	p := r.P0
	e := &detect.Error{RuleID: r.ID, Task: r.TaskOf()}
	addCell := func(varName, attr string) {
		if b, ok := h.Tuples[varName]; ok {
			e.Cells = append(e.Cells, data.CellRef{Rel: b.Rel, TID: b.Tuple.TID, Attr: attr})
		}
	}
	switch p.Kind {
	case predicate.KEID:
		bt, bs := h.Tuples[p.T], h.Tuples[p.S]
		a, c := bt.Tuple.EID, bs.Tuple.EID
		if a > c {
			a, c = c, a
		}
		e.DupEIDs = [2]string{a, c}
	case predicate.KConst:
		addCell(p.T, p.A)
	case predicate.KAttr:
		addCell(p.T, p.A)
		addCell(p.S, p.B)
	case predicate.KTemporal, predicate.KRank:
		addCell(p.T, p.A)
		addCell(p.S, p.A)
	case predicate.KVal, predicate.KML:
		addCell(p.T, p.A)
	case predicate.KPredict, predicate.KCorr:
		addCell(p.T, p.B)
	}
	return e
}

// Correct implements System: iterate "UPDATE ... FROM join" rounds until a
// round changes nothing. Consequences write directly into the cloned
// database (last write wins); merges are recorded but there is no
// equivalence reasoning, so transitive identifications are missed.
func (s *SQLEngine) Correct(b *Bench) (*quality.Corrections, error) {
	env := s.uncachedEnv(b)
	ex := exec.New(env)
	out := quality.NewCorrections()
	maxRounds := s.MaxRounds
	if maxRounds <= 0 {
		maxRounds = 12
	}
	if s.SinglePass {
		maxRounds = 1
	}
	for round := 0; round < maxRounds; round++ {
		changed := 0
		for _, r := range s.rules(b) {
			if err := r.Validate(env.DB); err != nil {
				return nil, err
			}
			type upd struct {
				rel  string
				tid  int
				attr string
				v    data.Value
			}
			var updates []upd
			var merges [][2]string
			_, err := ex.Run(r, exec.Options{UseBlocking: false}, func(h *predicate.Valuation) bool {
				p := r.P0
				switch p.Kind {
				case predicate.KEID:
					if p.Op != predicate.Eq {
						return true
					}
					bt, bs := h.Tuples[p.T], h.Tuples[p.S]
					if bt.Tuple.EID == bs.Tuple.EID {
						return true
					}
					a, c := bt.Tuple.EID, bs.Tuple.EID
					if a > c {
						a, c = c, a
					}
					merges = append(merges, [2]string{a, c})
				case predicate.KConst:
					if p.Op != predicate.Eq {
						return true
					}
					bt := h.Tuples[p.T]
					cur, _ := env.DB.Rel(bt.Rel).Value(bt.Tuple.TID, p.A)
					if !cur.Equal(p.C) {
						updates = append(updates, upd{bt.Rel, bt.Tuple.TID, p.A, p.C})
					}
				case predicate.KAttr:
					if p.Op != predicate.Eq {
						return true
					}
					bt, bs := h.Tuples[p.T], h.Tuples[p.S]
					vt, _ := env.DB.Rel(bt.Rel).Value(bt.Tuple.TID, p.A)
					vs, _ := env.DB.Rel(bs.Rel).Value(bs.Tuple.TID, p.B)
					if !vs.IsNull() && !vt.Equal(vs) {
						updates = append(updates, upd{bt.Rel, bt.Tuple.TID, p.A, vs})
					} else if vs.IsNull() && !vt.IsNull() {
						updates = append(updates, upd{bs.Rel, bs.Tuple.TID, p.B, vt})
					}
				}
				return true
			})
			if err != nil {
				return nil, err
			}
			for _, u := range updates {
				env.DB.Rel(u.rel).SetValue(u.tid, u.attr, u.v)
				out.AddCell(u.rel, u.tid, u.attr, u.v)
				changed++
			}
			for _, m := range merges {
				if !out.Merged[m] {
					out.AddMerge(m[0], m[1])
					changed++
				}
			}
		}
		if changed == 0 {
			break
		}
	}
	return out, nil
}
