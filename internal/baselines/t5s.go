package baselines

import (
	"math/rand"
	"sort"

	"github.com/rockclean/rock/internal/data"
	"github.com/rockclean/rock/internal/ml"
	"github.com/rockclean/rock/internal/quality"
	"github.com/rockclean/rock/internal/ree"
)

// T5s is the pre-trained-language-model baseline [20]: a per-cell error
// classifier over text-embedding features. The stand-in preserves the
// structural properties the paper reports:
//
//   - it "has to tune millions of parameters": inference runs a wide
//     dense layer per cell, so scanning a dataset is expensive even
//     though each pass is a single scan;
//   - it is strong on textual anomalies (typos shift the embedding) but
//     weak on numeric attributes (Figures 4(d)-(f), 4(j)): numbers embed
//     by their digit strings, which carry no arithmetic signal;
//   - correction suggests the nearest clean value in embedding space,
//     which cannot reconstruct numeric totals.
type T5s struct {
	// HiddenDim is the simulated model width (cost knob, default 256).
	HiddenDim int

	heads map[string]*ml.LogisticRegression // per relation.attr
	dense [][]float64                       // simulated pretrained layer
	// cleanValues indexes training-split clean values per rel.attr for
	// correction suggestions.
	cleanValues map[string][]data.Value
	// colFreq holds per-column value frequencies: rare exact values are a
	// strong textual-anomaly signal (typos are near-unique), the one
	// advantage an LM-style model has over pure logic on text.
	colFreq map[string]map[string]int
	colSize map[string]int
}

// NewT5s creates the baseline.
func NewT5s() *T5s { return &T5s{HiddenDim: 256} }

// Name implements System.
func (*T5s) Name() string { return "T5s" }

// featDim is the classifier input width: embedding + length stats +
// column-frequency signal.
const t5FeatDim = ml.EmbedDim + 4

// encode runs the "transformer": the cell embedding pushed through the
// wide dense layer (the cost) and summarised back to the feature width.
// colKey selects the column-frequency signal ("" disables it).
func (t *T5s) encode(v data.Value, colKey string) []float64 {
	emb := ml.Embed(v.String())
	if t.dense == nil {
		rng := rand.New(rand.NewSource(99))
		t.dense = make([][]float64, t.HiddenDim)
		for i := range t.dense {
			row := make([]float64, ml.EmbedDim)
			for j := range row {
				row[j] = rng.NormFloat64() / 16
			}
			t.dense[i] = row
		}
	}
	// Wide projection + pooling: this loop is the deliberate inference
	// cost of a large parameter count.
	pooled := make([]float64, ml.EmbedDim)
	for i := 0; i < t.HiddenDim; i++ {
		act := 0.0
		for j := 0; j < ml.EmbedDim; j++ {
			act += t.dense[i][j] * emb[j]
		}
		if act < 0 {
			act = 0
		}
		pooled[i%ml.EmbedDim] += act
	}
	out := make([]float64, t5FeatDim)
	copy(out, pooled)
	s := v.String()
	out[ml.EmbedDim] = float64(len(s)) / 32
	digits := 0
	for _, c := range s {
		if c >= '0' && c <= '9' {
			digits++
		}
	}
	if len(s) > 0 {
		out[ml.EmbedDim+1] = float64(digits) / float64(len(s))
	}
	if v.IsNull() {
		out[ml.EmbedDim+2] = 1
	}
	if colKey != "" && t.colFreq != nil {
		if n := t.colSize[colKey]; n > 0 {
			out[ml.EmbedDim+3] = float64(t.colFreq[colKey][v.Key()]) / float64(n)
		}
	}
	return out
}

// Discover implements System: "training" the per-attribute heads on the
// labelled split (the paper fine-tunes T5 on validation data).
func (t *T5s) Discover(b *Bench) ([]*ree.Rule, error) {
	rng := rand.New(rand.NewSource(b.Seed))
	t.heads = make(map[string]*ml.LogisticRegression)
	t.cleanValues = make(map[string][]data.Value)
	t.colFreq = make(map[string]map[string]int)
	t.colSize = make(map[string]int)
	goldCells := b.DS.Gold.ErrorCells()
	for relName, rel := range b.Env.DB.Relations {
		for ai, attr := range rel.Schema.Attrs {
			key := relName + "." + attr.Name
			freq := make(map[string]int)
			for _, tp := range rel.Tuples {
				freq[tp.Values[ai].Key()]++
			}
			t.colFreq[key] = freq
			t.colSize[key] = rel.Len()
		}
	}
	const fineTuneEpochs = 20
	for relName, rel := range b.Env.DB.Relations {
		for ai, attr := range rel.Schema.Attrs {
			key := relName + "." + attr.Name
			var cells []data.Value
			var ys []bool
			for _, tp := range rel.Tuples {
				if rng.Float64() > b.TrainFraction {
					continue
				}
				bad := goldCells[quality.CellKey(relName, tp.TID, attr.Name)]
				cells = append(cells, tp.Values[ai])
				ys = append(ys, bad)
				if !bad && !tp.Values[ai].IsNull() {
					t.cleanValues[key] = append(t.cleanValues[key], tp.Values[ai])
				}
			}
			head := ml.NewLogisticRegression(t5FeatDim)
			head.Epochs = 1
			// Fine-tuning re-runs the full forward pass every epoch — the
			// per-epoch re-encoding below is the deliberate cost of tuning
			// a large parameter count (the paper's T5s "cannot finish
			// training within one day" at production scale).
			for epoch := 0; epoch < fineTuneEpochs; epoch++ {
				xs := make([][]float64, len(cells))
				for i, v := range cells {
					xs[i] = t.encode(v, key)
				}
				head.Fit(xs, ys, b.Seed+int64(epoch))
			}
			t.heads[key] = head
		}
	}
	return nil, nil
}

func (t *T5s) ensureTrained(b *Bench) error {
	if t.heads == nil {
		_, err := t.Discover(b)
		return err
	}
	return nil
}

// Detect implements System: classify every cell.
func (t *T5s) Detect(b *Bench) (map[string]bool, map[[2]string]bool, error) {
	if err := t.ensureTrained(b); err != nil {
		return nil, nil, err
	}
	cells := make(map[string]bool)
	for relName, rel := range b.Env.DB.Relations {
		for _, tp := range rel.Tuples {
			for ai, attr := range rel.Schema.Attrs {
				head := t.heads[relName+"."+attr.Name]
				if head == nil {
					continue
				}
				if head.Predict(t.encode(tp.Values[ai], relName+"."+attr.Name)) {
					cells[quality.CellKey(relName, tp.TID, attr.Name)] = true
				}
			}
		}
	}
	// T5s performs no entity resolution pairing in this configuration.
	return cells, map[[2]string]bool{}, nil
}

// Correct implements System: for each detected cell, generate the nearest
// clean training value in embedding space.
func (t *T5s) Correct(b *Bench) (*quality.Corrections, error) {
	cells, _, err := t.Detect(b)
	if err != nil {
		return nil, err
	}
	out := quality.NewCorrections()
	keys := make([]string, 0, len(cells))
	for k := range cells {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, key := range keys {
		rel, tid, attr, ok := parseCellKey(key)
		if !ok {
			continue
		}
		r := b.Env.DB.Rel(rel)
		if r == nil {
			continue
		}
		cur, _ := r.Value(tid, attr)
		cands := t.cleanValues[rel+"."+attr]
		if len(cands) == 0 {
			continue
		}
		best, bestSim := data.Value{}, -1.0
		for _, c := range cands {
			if c.Equal(cur) {
				continue
			}
			s := ml.StringSim(cur.String(), c.String())
			if s > bestSim {
				best, bestSim = c, s
			}
		}
		if !best.IsNull() {
			out.AddCell(rel, tid, attr, best)
		}
	}
	return out, nil
}

func parseCellKey(key string) (rel string, tid int, attr string, ok bool) {
	lb, rb := -1, -1
	for i := 0; i < len(key); i++ {
		if key[i] == '[' && lb < 0 {
			lb = i
		}
		if key[i] == ']' {
			rb = i
			break
		}
	}
	if lb < 0 || rb < lb || rb+1 >= len(key) || key[rb+1] != '.' {
		return "", 0, "", false
	}
	n := 0
	for i := lb + 1; i < rb; i++ {
		if key[i] < '0' || key[i] > '9' {
			return "", 0, "", false
		}
		n = n*10 + int(key[i]-'0')
	}
	return key[:lb], n, key[rb+2:], true
}
