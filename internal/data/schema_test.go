package data

import (
	"bytes"
	"strings"
	"testing"
)

func personSchema(t *testing.T) *Schema {
	t.Helper()
	return MustSchema("Person",
		Attribute{"LN", TString},
		Attribute{"FN", TString},
		Attribute{"age", TInt},
	)
}

func TestSchemaValidation(t *testing.T) {
	if _, err := NewSchema(""); err == nil {
		t.Error("empty name must fail")
	}
	if _, err := NewSchema("R", Attribute{"", TInt}); err == nil {
		t.Error("empty attribute name must fail")
	}
	if _, err := NewSchema("R", Attribute{"A", TInt}, Attribute{"A", TString}); err == nil {
		t.Error("duplicate attribute must fail")
	}
	s := personSchema(t)
	if s.Index("LN") != 0 || s.Index("age") != 2 || s.Index("nope") != -1 {
		t.Error("bad attribute index")
	}
	if ty, ok := s.TypeOf("age"); !ok || ty != TInt {
		t.Error("TypeOf failed")
	}
	if got := s.String(); got != "Person(LN:string, FN:string, age:int)" {
		t.Errorf("schema string: %s", got)
	}
}

func TestRelationCRUD(t *testing.T) {
	r := NewRelation(personSchema(t))
	t1 := r.Insert("p1", S("Jones"), S("Christine"), I(30))
	t2 := r.Insert("p2", S("Smith"))
	if r.Len() != 2 {
		t.Fatalf("len=%d", r.Len())
	}
	if t1.TID == t2.TID {
		t.Fatal("TIDs must be unique")
	}
	// Short insert pads with nulls.
	if v, _ := r.Value(t2.TID, "age"); !v.IsNull() {
		t.Error("padded value must be null")
	}
	if ok := r.SetValue(t2.TID, "age", I(41)); !ok {
		t.Fatal("SetValue failed")
	}
	if v, _ := r.Value(t2.TID, "age"); !v.Equal(I(41)) {
		t.Error("SetValue not visible")
	}
	if r.SetValue(999, "age", I(1)) {
		t.Error("SetValue on missing tid must fail")
	}
	if r.SetValue(t1.TID, "ghost", I(1)) {
		t.Error("SetValue on missing attr must fail")
	}
	if !r.Delete(t1.TID) || r.Delete(t1.TID) {
		t.Error("delete semantics wrong")
	}
	if r.Len() != 1 || r.Get(t1.TID) != nil {
		t.Error("delete did not remove tuple")
	}
}

func TestRelationCloneIsDeep(t *testing.T) {
	r := NewRelation(personSchema(t))
	tp := r.Insert("p1", S("Jones"), S("C"), I(1))
	c := r.Clone()
	c.SetValue(tp.TID, "LN", S("Changed"))
	if v, _ := r.Value(tp.TID, "LN"); !v.Equal(S("Jones")) {
		t.Error("clone mutated original")
	}
	// Fresh inserts in the clone must not collide with original TIDs.
	nt := c.Insert("p9", S("New"), S("N"), I(2))
	if r.Get(nt.TID) != nil {
		t.Error("clone insert leaked into original")
	}
}

func TestDatabase(t *testing.T) {
	db := NewDatabase()
	db.Add(NewRelation(personSchema(t)))
	db.Add(NewRelation(MustSchema("Store", Attribute{"name", TString})))
	if got := db.Names(); len(got) != 2 || got[0] != "Person" || got[1] != "Store" {
		t.Errorf("names: %v", got)
	}
	db.Rel("Person").Insert("p1", S("a"), S("b"), I(1))
	if db.TupleCount() != 1 {
		t.Error("tuple count")
	}
	c := db.Clone()
	c.Rel("Person").Insert("p2", S("x"), S("y"), I(2))
	if db.TupleCount() != 1 || c.TupleCount() != 2 {
		t.Error("database clone not deep")
	}
}

func TestCSVRoundTrip(t *testing.T) {
	r := NewRelation(MustSchema("T",
		Attribute{"s", TString},
		Attribute{"n", TInt},
		Attribute{"f", TFloat},
		Attribute{"b", TBool},
		Attribute{"ts", TTime},
	))
	r.Insert("e1", S("hello, world"), I(-5), F(2.5), B(true), TS(1600000000))
	r.Insert("e2", S(`quoted "txt"`), Null(TInt), Null(TFloat), B(false), Null(TTime))
	var buf bytes.Buffer
	if err := WriteCSV(&buf, r); err != nil {
		t.Fatal(err)
	}
	got, err := ReadCSV(&buf, "T")
	if err != nil {
		t.Fatal(err)
	}
	if got.Len() != 2 {
		t.Fatalf("len=%d", got.Len())
	}
	for i, orig := range r.Tuples {
		back := got.Tuples[i]
		if back.EID != orig.EID {
			t.Errorf("row %d eid %q != %q", i, back.EID, orig.EID)
		}
		for j := range orig.Values {
			if !back.Values[j].Equal(orig.Values[j]) {
				t.Errorf("row %d col %d: %v != %v", i, j, back.Values[j], orig.Values[j])
			}
		}
	}
}

func TestCSVErrors(t *testing.T) {
	if _, err := ReadCSV(strings.NewReader(""), "T"); err == nil {
		t.Error("empty csv must fail")
	}
	if _, err := ReadCSV(strings.NewReader("a,b\n"), "T"); err == nil {
		t.Error("missing types row must fail")
	}
	if _, err := ReadCSV(strings.NewReader("x,b\nstring,int\n"), "T"); err == nil {
		t.Error("missing eid column must fail")
	}
	if _, err := ReadCSV(strings.NewReader("eid,b\nstring,widget\n"), "T"); err == nil {
		t.Error("unknown type must fail")
	}
	if _, err := ReadCSV(strings.NewReader("eid,b\nstring,int\ne1,notanint\n"), "T"); err == nil {
		t.Error("bad cell must fail")
	}
}
