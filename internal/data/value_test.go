package data

import (
	"testing"
	"testing/quick"
	"time"
)

func TestValueNullness(t *testing.T) {
	var zero Value
	if !zero.IsNull() {
		t.Fatal("zero Value must be null")
	}
	if !Null(TInt).IsNull() {
		t.Fatal("Null(TInt) must be null")
	}
	if S("x").IsNull() {
		t.Fatal("S must not be null")
	}
	if S("").IsNull() {
		t.Fatal("empty string is a value, not null")
	}
}

func TestValueEqual(t *testing.T) {
	cases := []struct {
		a, b Value
		want bool
	}{
		{S("a"), S("a"), true},
		{S("a"), S("b"), false},
		{I(3), I(3), true},
		{I(3), F(3), true}, // numeric cross-type
		{I(3), F(3.5), false},
		{B(true), B(true), true},
		{B(true), B(false), false},
		{Null(TString), Null(TInt), true}, // null equals null
		{Null(TString), S(""), false},
		{TS(100), TS(100), true},
		{TS(100), I(100), true},
		{S("3"), I(3), false}, // no string/number coercion
	}
	for i, c := range cases {
		if got := c.a.Equal(c.b); got != c.want {
			t.Errorf("case %d: %v == %v: got %v want %v", i, c.a, c.b, got, c.want)
		}
		if got := c.b.Equal(c.a); got != c.want {
			t.Errorf("case %d (sym): %v == %v: got %v want %v", i, c.b, c.a, got, c.want)
		}
	}
}

func TestValueCompare(t *testing.T) {
	cases := []struct {
		a, b Value
		want int
	}{
		{I(1), I(2), -1},
		{I(2), I(1), 1},
		{F(1.5), I(2), -1},
		{S("a"), S("b"), -1},
		{S("b"), S("a"), 1},
		{S("a"), S("a"), 0},
		{Null(TInt), I(0), -1},
		{I(0), Null(TInt), 1},
		{Null(TInt), Null(TString), 0},
		{B(false), B(true), -1},
		{TS(5), TS(9), -1},
	}
	for i, c := range cases {
		if got := c.a.Compare(c.b); got != c.want {
			t.Errorf("case %d: cmp(%v,%v)=%d want %d", i, c.a, c.b, got, c.want)
		}
	}
}

func TestValueCompareAntisymmetric(t *testing.T) {
	f := func(a, b int64) bool {
		return I(a).Compare(I(b)) == -I(b).Compare(I(a))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
	g := func(a, b string) bool {
		return S(a).Compare(S(b)) == -S(b).Compare(S(a))
	}
	if err := quick.Check(g, nil); err != nil {
		t.Error(err)
	}
}

func TestParseRoundTrip(t *testing.T) {
	vals := []Value{S("hello world"), I(-42), F(3.25), B(true), TS(1700000000), Null(TInt), Null(TString)}
	types := []Type{TString, TInt, TFloat, TBool, TTime, TInt, TString}
	for i, v := range vals {
		if v.IsNull() && types[i] == TString {
			// "null" string round-trips as the literal string; skip.
			continue
		}
		got, err := Parse(types[i], v.String())
		if err != nil {
			t.Fatalf("parse %v: %v", v, err)
		}
		if !got.Equal(v) {
			t.Errorf("round trip %v -> %v", v, got)
		}
	}
}

func TestParseRoundTripQuick(t *testing.T) {
	f := func(n int64) bool {
		v, err := Parse(TInt, I(n).String())
		return err == nil && v.Equal(I(n))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestParseDate(t *testing.T) {
	v, err := Parse(TTime, "2021-11-11")
	if err != nil {
		t.Fatal(err)
	}
	if v.IsNull() || v.Kind() != TTime {
		t.Fatalf("bad date value: %v", v)
	}
	v2 := MustParse(TTime, "2023-08-12")
	if v.Compare(v2) != -1 {
		t.Error("2021-11-11 should be before 2023-08-12")
	}
}

func TestParseErrors(t *testing.T) {
	if _, err := Parse(TInt, "abc"); err == nil {
		t.Error("expected int parse error")
	}
	if _, err := Parse(TFloat, "xx"); err == nil {
		t.Error("expected float parse error")
	}
	if _, err := Parse(TBool, "yes?no"); err == nil {
		t.Error("expected bool parse error")
	}
	if _, err := Parse(TTime, "not-a-date"); err == nil {
		t.Error("expected time parse error")
	}
}

func TestValueKeyDistinct(t *testing.T) {
	// Values of different kinds must never share a key.
	pairs := [][2]Value{
		{S("3"), I(3)},
		{S("true"), B(true)},
		{I(0), B(false)},
	}
	for _, p := range pairs {
		if p[0].Key() == p[1].Key() {
			t.Errorf("key collision between %v and %v", p[0], p[1])
		}
	}
	if S("x").Key() != S("x").Key() {
		t.Error("same value must have same key")
	}
	if Null(TInt).Key() != Null(TString).Key() {
		t.Error("nulls share one key")
	}
}

func TestValueAccessors(t *testing.T) {
	if S("abc").Str() != "abc" {
		t.Error("Str")
	}
	if I(42).Int() != 42 {
		t.Error("Int")
	}
	if !B(true).Bool() {
		t.Error("Bool")
	}
	if TS(99).Unix() != 99 {
		t.Error("Unix")
	}
	when := Time(time.Unix(12345, 0))
	if when.Kind() != TTime || when.Unix() != 12345 {
		t.Error("Time constructor")
	}
	// Float accessor across kinds.
	if I(3).Float() != 3 || F(2.5).Float() != 2.5 || TS(7).Float() != 7 || S("x").Float() != 0 {
		t.Error("Float")
	}
	if B(true).String() != "true" {
		t.Error("bool String")
	}
}

func TestValueKeyAgreesWithEqual(t *testing.T) {
	// Key is the canonical hash key of the executor's join indexes: two
	// values must share a key exactly when Equal holds, or hash joins and
	// probe joins disagree about which tuples match. Numerics equal across
	// kinds (I(5), F(5), TS(5)) are the regression case.
	if I(5).Key() != F(5).Key() {
		t.Error("I(5) and F(5) are Equal but keyed apart")
	}
	if I(5).Key() != TS(5).Key() {
		t.Error("I(5) and TS(5) are Equal but keyed apart")
	}
	if F(2.5).Key() == I(2).Key() {
		t.Error("F(2.5) and I(2) differ but share a key")
	}
	sample := []Value{
		I(0), I(5), I(-3), F(0), F(5), F(5.5), F(-3), TS(5), TS(0),
		S("5"), S(""), S("abc"), B(true), B(false),
		Null(TInt), Null(TFloat), Null(TString), Null(TBool), Null(TTime),
	}
	for _, a := range sample {
		for _, b := range sample {
			eq := a.Equal(b)
			keq := a.Key() == b.Key()
			if eq != keq {
				t.Errorf("%v vs %v: Equal=%v but key equality=%v (keys %q, %q)",
					a, b, eq, keq, a.Key(), b.Key())
			}
		}
	}
}
