package data

import (
	"encoding/csv"
	"fmt"
	"io"
	"strings"
)

// WriteCSV serialises the relation with a two-row header: attribute names,
// then attribute types. The first column is always the EID.
func WriteCSV(w io.Writer, r *Relation) error {
	cw := csv.NewWriter(w)
	header := append([]string{"eid"}, r.Schema.AttrNames()...)
	if err := cw.Write(header); err != nil {
		return err
	}
	types := make([]string, 0, len(r.Schema.Attrs)+1)
	types = append(types, "string")
	for _, a := range r.Schema.Attrs {
		types = append(types, a.Type.String())
	}
	if err := cw.Write(types); err != nil {
		return err
	}
	row := make([]string, len(r.Schema.Attrs)+1)
	for _, t := range r.Tuples {
		row[0] = t.EID
		for i, v := range t.Values {
			row[i+1] = v.String()
		}
		if err := cw.Write(row); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// ReadCSV parses a relation written by WriteCSV.
func ReadCSV(rd io.Reader, name string) (*Relation, error) {
	cr := csv.NewReader(rd)
	header, err := cr.Read()
	if err != nil {
		return nil, fmt.Errorf("read csv header: %w", err)
	}
	typesRow, err := cr.Read()
	if err != nil {
		return nil, fmt.Errorf("read csv types: %w", err)
	}
	if len(header) != len(typesRow) {
		return nil, fmt.Errorf("csv header/types arity mismatch: %d vs %d", len(header), len(typesRow))
	}
	if len(header) == 0 || header[0] != "eid" {
		return nil, fmt.Errorf("csv must start with an eid column")
	}
	attrs := make([]Attribute, 0, len(header)-1)
	for i := 1; i < len(header); i++ {
		t, err := parseType(typesRow[i])
		if err != nil {
			return nil, err
		}
		attrs = append(attrs, Attribute{Name: header[i], Type: t})
	}
	schema, err := NewSchema(name, attrs...)
	if err != nil {
		return nil, err
	}
	rel := NewRelation(schema)
	for {
		row, err := cr.Read()
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, fmt.Errorf("read csv row: %w", err)
		}
		vals := make([]Value, len(attrs))
		for i := range attrs {
			v, err := Parse(attrs[i].Type, row[i+1])
			if err != nil {
				return nil, fmt.Errorf("row %d col %s: %w", rel.Len(), attrs[i].Name, err)
			}
			vals[i] = v
		}
		rel.Insert(row[0], vals...)
	}
	return rel, nil
}

func parseType(s string) (Type, error) {
	switch strings.TrimSpace(s) {
	case "string":
		return TString, nil
	case "int":
		return TInt, nil
	case "float":
		return TFloat, nil
	case "bool":
		return TBool, nil
	case "time":
		return TTime, nil
	default:
		return TString, fmt.Errorf("unknown attribute type %q", s)
	}
}
