// Package data defines the relational substrate underlying Rock: typed
// values with nulls, schemas, tuples carrying entity identifiers (EIDs),
// relations, databases, and temporal relations that attach per-cell
// timestamps and partial currency orders (paper §2, "Preliminaries").
package data

import (
	"fmt"
	"strconv"
	"strings"
	"time"
)

// Type enumerates the attribute types supported by Rock schemas.
type Type int

const (
	// TString is a textual attribute.
	TString Type = iota
	// TInt is a 64-bit integer attribute.
	TInt
	// TFloat is a 64-bit floating point attribute.
	TFloat
	// TBool is a Boolean attribute.
	TBool
	// TTime is a timestamp attribute (stored as Unix seconds).
	TTime
)

// String returns the SQL-ish name of the type.
func (t Type) String() string {
	switch t {
	case TString:
		return "string"
	case TInt:
		return "int"
	case TFloat:
		return "float"
	case TBool:
		return "bool"
	case TTime:
		return "time"
	default:
		return fmt.Sprintf("Type(%d)", int(t))
	}
}

// Value is a single attribute value. The zero Value is null.
// Values are small and passed by value throughout.
type Value struct {
	kind  Type
	null  bool
	s     string
	i     int64
	f     float64
	b     bool
	valid bool // distinguishes the zero Value (null) from constructed ones
}

// Null returns a null value of the given type.
func Null(t Type) Value { return Value{kind: t, null: true, valid: true} }

// S constructs a string value.
func S(v string) Value { return Value{kind: TString, s: v, valid: true} }

// I constructs an integer value.
func I(v int64) Value { return Value{kind: TInt, i: v, valid: true} }

// F constructs a float value.
func F(v float64) Value { return Value{kind: TFloat, f: v, valid: true} }

// B constructs a Boolean value.
func B(v bool) Value { return Value{kind: TBool, b: v, valid: true} }

// TS constructs a timestamp value from Unix seconds.
func TS(unix int64) Value { return Value{kind: TTime, i: unix, valid: true} }

// Time constructs a timestamp value from a time.Time.
func Time(t time.Time) Value { return TS(t.Unix()) }

// Kind reports the type of the value.
func (v Value) Kind() Type { return v.kind }

// IsNull reports whether the value is null. The zero Value is null.
func (v Value) IsNull() bool { return v.null || !v.valid }

// Str returns the string payload; only meaningful for TString values.
func (v Value) Str() string { return v.s }

// Int returns the integer payload; meaningful for TInt and TTime values.
func (v Value) Int() int64 { return v.i }

// Float returns the numeric payload as float64 for TInt, TFloat and TTime.
func (v Value) Float() float64 {
	switch v.kind {
	case TInt, TTime:
		return float64(v.i)
	case TFloat:
		return v.f
	default:
		return 0
	}
}

// Bool returns the Boolean payload; only meaningful for TBool values.
func (v Value) Bool() bool { return v.b }

// Unix returns the timestamp payload in Unix seconds for TTime values.
func (v Value) Unix() int64 { return v.i }

// Equal reports deep equality between two values. Nulls are equal only to
// nulls of any type (SQL users beware: Rock treats null = null as true when
// comparing fix candidates, and the chase never equates a null with a
// non-null).
func (v Value) Equal(w Value) bool {
	if v.IsNull() || w.IsNull() {
		return v.IsNull() && w.IsNull()
	}
	if v.kind != w.kind {
		// Numeric cross-type comparison.
		if isNumeric(v.kind) && isNumeric(w.kind) {
			return v.Float() == w.Float()
		}
		return false
	}
	switch v.kind {
	case TString:
		return v.s == w.s
	case TInt, TTime:
		return v.i == w.i
	case TFloat:
		return v.f == w.f
	case TBool:
		return v.b == w.b
	}
	return false
}

// Compare orders two non-null values: -1 if v<w, 0 if equal, +1 if v>w.
// Null values sort before everything; two nulls compare equal.
func (v Value) Compare(w Value) int {
	switch {
	case v.IsNull() && w.IsNull():
		return 0
	case v.IsNull():
		return -1
	case w.IsNull():
		return 1
	}
	if isNumeric(v.kind) && isNumeric(w.kind) {
		a, b := v.Float(), w.Float()
		switch {
		case a < b:
			return -1
		case a > b:
			return 1
		default:
			return 0
		}
	}
	if v.kind == TString && w.kind == TString {
		return strings.Compare(v.s, w.s)
	}
	if v.kind == TBool && w.kind == TBool {
		switch {
		case v.b == w.b:
			return 0
		case w.b:
			return -1
		default:
			return 1
		}
	}
	// Incomparable kinds order by kind for determinism.
	switch {
	case v.kind < w.kind:
		return -1
	case v.kind > w.kind:
		return 1
	default:
		return 0
	}
}

func isNumeric(t Type) bool { return t == TInt || t == TFloat || t == TTime }

// String renders the value for display and CSV round-tripping.
func (v Value) String() string {
	if v.IsNull() {
		return "null"
	}
	switch v.kind {
	case TString:
		return v.s
	case TInt:
		return strconv.FormatInt(v.i, 10)
	case TFloat:
		return strconv.FormatFloat(v.f, 'g', -1, 64)
	case TBool:
		return strconv.FormatBool(v.b)
	case TTime:
		return time.Unix(v.i, 0).UTC().Format("2006-01-02T15:04:05Z")
	}
	return ""
}

// Parse converts text into a value of type t. The literal "null" (and the
// empty string for non-string types) parses as null.
func Parse(t Type, text string) (Value, error) {
	if text == "null" || (text == "" && t != TString) {
		return Null(t), nil
	}
	switch t {
	case TString:
		return S(text), nil
	case TInt:
		n, err := strconv.ParseInt(text, 10, 64)
		if err != nil {
			return Value{}, fmt.Errorf("parse int %q: %w", text, err)
		}
		return I(n), nil
	case TFloat:
		f, err := strconv.ParseFloat(text, 64)
		if err != nil {
			return Value{}, fmt.Errorf("parse float %q: %w", text, err)
		}
		return F(f), nil
	case TBool:
		b, err := strconv.ParseBool(text)
		if err != nil {
			return Value{}, fmt.Errorf("parse bool %q: %w", text, err)
		}
		return B(b), nil
	case TTime:
		if ts, err := time.Parse("2006-01-02T15:04:05Z", text); err == nil {
			return TS(ts.Unix()), nil
		}
		if ts, err := time.Parse("2006-01-02", text); err == nil {
			return TS(ts.Unix()), nil
		}
		n, err := strconv.ParseInt(text, 10, 64)
		if err != nil {
			return Value{}, fmt.Errorf("parse time %q: %w", text, err)
		}
		return TS(n), nil
	}
	return Value{}, fmt.Errorf("unknown type %v", t)
}

// Key returns a canonical string usable as a map key. Keys agree with
// Equal: all nulls share one key, and the numeric kinds (int, float, time)
// collapse onto one canonical encoding of their float64 value — Equal and
// Compare treat I(5), F(5) and TS(5) as the same value, so indexes keyed
// by Key (hash joins, dictionaries, fix dedup) must too. Non-numeric kinds
// stay kind-prefixed so values of different kinds never collide.
func (v Value) Key() string {
	if v.IsNull() {
		return "\x00null"
	}
	if isNumeric(v.kind) {
		return "N\x1f" + strconv.FormatFloat(v.Float(), 'g', -1, 64)
	}
	return string(rune('0'+int(v.kind))) + "\x1f" + v.String()
}
