package data

import (
	"fmt"
	"sort"
	"strings"
)

// Attribute is a named, typed column of a relation schema.
type Attribute struct {
	Name string
	Type Type
}

// Schema is a relation schema R(A1:τ1, ..., Ak:τk). Attribute names are
// unique within a schema. Following the paper we assume every tuple also
// carries an EID attribute identifying the entity it represents; the EID is
// stored on the tuple, not as a schema attribute.
type Schema struct {
	Name  string
	Attrs []Attribute
	index map[string]int
}

// NewSchema builds a schema, validating attribute-name uniqueness.
func NewSchema(name string, attrs ...Attribute) (*Schema, error) {
	if name == "" {
		return nil, fmt.Errorf("schema: empty relation name")
	}
	s := &Schema{Name: name, Attrs: attrs, index: make(map[string]int, len(attrs))}
	for i, a := range attrs {
		if a.Name == "" {
			return nil, fmt.Errorf("schema %s: attribute %d has empty name", name, i)
		}
		if _, dup := s.index[a.Name]; dup {
			return nil, fmt.Errorf("schema %s: duplicate attribute %q", name, a.Name)
		}
		s.index[a.Name] = i
	}
	return s, nil
}

// Index returns the position of the named attribute, or -1.
func (s *Schema) Index(attr string) int {
	if i, ok := s.index[attr]; ok {
		return i
	}
	return -1
}

// Has reports whether the schema contains the named attribute.
func (s *Schema) Has(attr string) bool { return s.Index(attr) >= 0 }

// TypeOf returns the type of the named attribute; ok is false if absent.
func (s *Schema) TypeOf(attr string) (Type, bool) {
	i := s.Index(attr)
	if i < 0 {
		return TString, false
	}
	return s.Attrs[i].Type, true
}

// AttrNames returns the attribute names in schema order.
func (s *Schema) AttrNames() []string {
	names := make([]string, len(s.Attrs))
	for i, a := range s.Attrs {
		names[i] = a.Name
	}
	return names
}

// String renders the schema as R(A:τ, ...).
func (s *Schema) String() string {
	var b strings.Builder
	b.WriteString(s.Name)
	b.WriteByte('(')
	for i, a := range s.Attrs {
		if i > 0 {
			b.WriteString(", ")
		}
		fmt.Fprintf(&b, "%s:%s", a.Name, a.Type)
	}
	b.WriteByte(')')
	return b.String()
}

// Tuple is a row of a relation. TID is unique within its relation and stable
// across updates; EID identifies the real-world entity the tuple represents
// (paper §2 follows [21] in assuming an EID attribute).
type Tuple struct {
	TID    int
	EID    string
	Values []Value
}

// Clone deep-copies the tuple.
func (t *Tuple) Clone() *Tuple {
	vs := make([]Value, len(t.Values))
	copy(vs, t.Values)
	return &Tuple{TID: t.TID, EID: t.EID, Values: vs}
}

// Relation is an instance D of a schema R: an ordered collection of tuples
// with TID-based lookup.
type Relation struct {
	Schema *Schema
	Tuples []*Tuple
	byTID  map[int]*Tuple
	nextID int
}

// NewRelation creates an empty relation of the given schema.
func NewRelation(s *Schema) *Relation {
	return &Relation{Schema: s, byTID: make(map[int]*Tuple)}
}

// Insert appends a tuple with a fresh TID and returns it. The value slice
// must match the schema arity; a short slice is padded with nulls.
func (r *Relation) Insert(eid string, values ...Value) *Tuple {
	vs := make([]Value, len(r.Schema.Attrs))
	for i := range vs {
		if i < len(values) {
			vs[i] = values[i]
		} else {
			vs[i] = Null(r.Schema.Attrs[i].Type)
		}
	}
	t := &Tuple{TID: r.nextID, EID: eid, Values: vs}
	r.nextID++
	r.Tuples = append(r.Tuples, t)
	r.byTID[t.TID] = t
	return t
}

// Get returns the tuple with the given TID, or nil.
func (r *Relation) Get(tid int) *Tuple { return r.byTID[tid] }

// NextTID returns the TID the next Insert will assign — the exclusive
// upper bound of every TID ever assigned. Dense TID-indexed structures
// (crystal columns) use it to tell full coverage from stale builds.
func (r *Relation) NextTID() int { return r.nextID }

// Len returns the number of tuples.
func (r *Relation) Len() int { return len(r.Tuples) }

// Value returns t[attr] for the tuple with the given TID.
func (r *Relation) Value(tid int, attr string) (Value, bool) {
	t := r.byTID[tid]
	if t == nil {
		return Value{}, false
	}
	i := r.Schema.Index(attr)
	if i < 0 {
		return Value{}, false
	}
	return t.Values[i], true
}

// SetValue updates t[attr] in place; used by error correction when a fix is
// applied back to the data.
func (r *Relation) SetValue(tid int, attr string, v Value) bool {
	t := r.byTID[tid]
	if t == nil {
		return false
	}
	i := r.Schema.Index(attr)
	if i < 0 {
		return false
	}
	t.Values[i] = v
	return true
}

// Delete removes the tuple with the given TID; it reports whether the tuple
// existed. Used by the incremental modes to apply ΔD deletions.
func (r *Relation) Delete(tid int) bool {
	t := r.byTID[tid]
	if t == nil {
		return false
	}
	delete(r.byTID, tid)
	for i, u := range r.Tuples {
		if u.TID == tid {
			r.Tuples = append(r.Tuples[:i], r.Tuples[i+1:]...)
			break
		}
	}
	_ = t
	return true
}

// Clone deep-copies the relation (tuples included).
func (r *Relation) Clone() *Relation {
	c := NewRelation(r.Schema)
	c.nextID = r.nextID
	c.Tuples = make([]*Tuple, 0, len(r.Tuples))
	for _, t := range r.Tuples {
		ct := t.Clone()
		c.Tuples = append(c.Tuples, ct)
		c.byTID[ct.TID] = ct
	}
	return c
}

// Database is an instance of a database schema: named relations. Attribute
// names need not be globally unique; the qualified form "Rel.Attr" is used
// wherever cross-relation disambiguation matters.
type Database struct {
	Relations map[string]*Relation
}

// NewDatabase creates an empty database.
func NewDatabase() *Database { return &Database{Relations: make(map[string]*Relation)} }

// Add registers a relation; it replaces any previous relation of that name.
func (d *Database) Add(r *Relation) { d.Relations[r.Schema.Name] = r }

// Rel returns the named relation, or nil.
func (d *Database) Rel(name string) *Relation { return d.Relations[name] }

// Names returns the relation names in sorted order for deterministic
// iteration.
func (d *Database) Names() []string {
	names := make([]string, 0, len(d.Relations))
	for n := range d.Relations {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// Clone deep-copies the database.
func (d *Database) Clone() *Database {
	c := NewDatabase()
	for _, r := range d.Relations {
		c.Add(r.Clone())
	}
	return c
}

// TupleCount returns the total number of tuples across relations.
func (d *Database) TupleCount() int {
	n := 0
	for _, r := range d.Relations {
		n += r.Len()
	}
	return n
}
