package data

// Test-only literal helpers; the exported equivalents live in
// internal/must, which this package cannot import (cycle).

func MustSchema(name string, attrs ...Attribute) *Schema {
	s, err := NewSchema(name, attrs...)
	if err != nil {
		panic(err)
	}
	return s
}

func MustParse(t Type, text string) Value {
	v, err := Parse(t, text)
	if err != nil {
		panic(err)
	}
	return v
}
