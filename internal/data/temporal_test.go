package data

import (
	"testing"
	"testing/quick"
)

func TestTemporalRelationStamps(t *testing.T) {
	r := NewRelation(MustSchema("R", Attribute{"A", TString}))
	tp := r.Insert("e1", S("v"))
	tr := NewTemporalRelation(r)
	if _, ok := tr.Timestamp(tp.TID, "A"); ok {
		t.Error("no stamp yet")
	}
	tr.Stamp(tp.TID, "A", 100)
	if ts, ok := tr.Timestamp(tp.TID, "A"); !ok || ts != 100 {
		t.Error("stamp lost")
	}
}

func TestTemporalOrderTransitivity(t *testing.T) {
	o := NewTemporalOrder("R", "A")
	o.AddWeak(1, 2)
	o.AddWeak(2, 3)
	if !o.Leq(1, 3) {
		t.Error("transitive Leq failed")
	}
	if o.Leq(3, 1) {
		t.Error("reverse must not hold")
	}
	if !o.Leq(5, 5) {
		t.Error("Leq must be reflexive")
	}
	if o.Less(1, 3) {
		t.Error("no strict edge, Less must be false")
	}
	o.AddStrict(3, 4)
	if !o.Less(1, 4) {
		t.Error("weak path + strict edge must give Less")
	}
	if !o.Leq(1, 4) {
		t.Error("strict implies weak")
	}
	if o.Less(4, 4) {
		t.Error("Less must be irreflexive")
	}
}

func TestTemporalOrderCycleDetection(t *testing.T) {
	o := NewTemporalOrder("R", "A")
	o.AddWeak(1, 2)
	o.AddWeak(2, 1) // ties are fine
	if o.HasCycleOfStrict() {
		t.Error("weak cycle alone is valid (a tie)")
	}
	o.AddStrict(1, 2)
	if !o.HasCycleOfStrict() {
		t.Error("strict edge inside weak cycle must be invalid")
	}
}

func TestTemporalOrderLatest(t *testing.T) {
	o := NewTemporalOrder("R", "A")
	o.AddStrict(1, 2)
	o.AddStrict(2, 3)
	got := o.Latest([]int{1, 2, 3})
	if len(got) != 1 || got[0] != 3 {
		t.Errorf("latest=%v want [3]", got)
	}
	// Incomparable elements are all maximal.
	got = o.Latest([]int{3, 9})
	if len(got) != 2 {
		t.Errorf("latest=%v want both", got)
	}
}

func TestSeedFromTimestamps(t *testing.T) {
	db := NewDatabase()
	r := NewRelation(MustSchema("R", Attribute{"A", TString}))
	t1 := r.Insert("e1", S("old"))
	t2 := r.Insert("e2", S("new"))
	t3 := r.Insert("e3", S("tie"))
	db.Add(r)
	ti := NewTemporalInstance(db)
	tr := ti.Stamps["R"]
	tr.Stamp(t1.TID, "A", 10)
	tr.Stamp(t2.TID, "A", 20)
	tr.Stamp(t3.TID, "A", 20)
	ti.SeedFromTimestamps()
	o := ti.Order("R", "A")
	if !o.Less(t1.TID, t2.TID) {
		t.Error("earlier stamp must be strictly older")
	}
	if !o.Leq(t2.TID, t3.TID) || !o.Leq(t3.TID, t2.TID) {
		t.Error("equal stamps must be weakly ordered both ways")
	}
	if o.Less(t2.TID, t3.TID) {
		t.Error("equal stamps must not be strict")
	}
	if o.HasCycleOfStrict() {
		t.Error("seeding must produce a valid order")
	}
}

// Property: seeding from any set of timestamps never creates an invalid
// (strict-cyclic) order, because strict edges always follow strictly
// increasing timestamps.
func TestSeedFromTimestampsAlwaysValid(t *testing.T) {
	f := func(stamps []int8) bool {
		db := NewDatabase()
		r := NewRelation(MustSchema("R", Attribute{"A", TString}))
		for range stamps {
			r.Insert("e", S("v"))
		}
		db.Add(r)
		ti := NewTemporalInstance(db)
		for i, s := range stamps {
			ti.Stamps["R"].Stamp(r.Tuples[i].TID, "A", int64(s))
		}
		ti.SeedFromTimestamps()
		return !ti.Order("R", "A").HasCycleOfStrict()
	}
	cfg := &quick.Config{MaxCount: 30}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}

func TestTemporalOrderCloneAndPairs(t *testing.T) {
	o := NewTemporalOrder("R", "A")
	o.AddWeak(1, 2)
	o.AddStrict(2, 3)
	c := o.Clone()
	c.AddStrict(3, 1) // mutate the clone only
	if o.Less(3, 1) {
		t.Error("clone mutated the original")
	}
	if !c.Less(2, 3) || !c.Leq(1, 2) {
		t.Error("clone lost edges")
	}
	pairs := o.Pairs()
	if len(pairs) != 2 {
		t.Errorf("pairs=%v", pairs)
	}
	strict := o.StrictPairs()
	if len(strict) != 1 || strict[0] != [2]int{2, 3} {
		t.Errorf("strict pairs=%v", strict)
	}
}

func TestCellRefString(t *testing.T) {
	c := CellRef{Rel: "Person", TID: 7, Attr: "home"}
	if c.String() != "Person[7].home" {
		t.Errorf("cellref string=%q", c.String())
	}
}
