package data

import (
	"fmt"
	"sort"
)

// CellRef identifies the A-attribute of a tuple: the unit that timestamps
// and temporal orders attach to.
type CellRef struct {
	Rel  string
	TID  int
	Attr string
}

// String renders the cell as Rel[tid].Attr.
func (c CellRef) String() string { return fmt.Sprintf("%s[%d].%s", c.Rel, c.TID, c.Attr) }

// TemporalRelation is (D, T): a relation plus a partial function T that
// associates a timestamp with the A-attribute of a tuple (paper §2.2). A
// timestamp asserts that at time T(t[A]) the value t[A] was correct and
// up-to-date; different attributes of a tuple may carry different
// timestamps because they come from different sources.
type TemporalRelation struct {
	*Relation
	stamps map[int]map[string]int64 // tid -> attr -> unix time
}

// NewTemporalRelation wraps a relation with an empty timestamp map.
func NewTemporalRelation(r *Relation) *TemporalRelation {
	return &TemporalRelation{Relation: r, stamps: make(map[int]map[string]int64)}
}

// Stamp records T(t[A]) = ts.
func (tr *TemporalRelation) Stamp(tid int, attr string, ts int64) {
	m := tr.stamps[tid]
	if m == nil {
		m = make(map[string]int64)
		tr.stamps[tid] = m
	}
	m[attr] = ts
}

// Timestamp returns T(t[A]) and whether it is defined.
func (tr *TemporalRelation) Timestamp(tid int, attr string) (int64, bool) {
	m := tr.stamps[tid]
	if m == nil {
		return 0, false
	}
	ts, ok := m[attr]
	return ts, ok
}

// TemporalOrder is a partial order ⪯_A on one attribute of one relation,
// represented as a set of ranked tuple pairs (t2, t1) meaning t2 ⪯_A t1:
// t1[A] is at least as current as t2[A]. Strict pairs t2 ≺_A t1 are tracked
// separately. Reachability queries close the stored pairs transitively.
type TemporalOrder struct {
	Rel  string
	Attr string

	succ       map[int]map[int]bool // weak edges: older -> newer
	strictSucc map[int]map[int]bool // strict edges: older -> newer
}

// NewTemporalOrder creates an empty order for Rel.Attr.
func NewTemporalOrder(rel, attr string) *TemporalOrder {
	return &TemporalOrder{
		Rel:        rel,
		Attr:       attr,
		succ:       make(map[int]map[int]bool),
		strictSucc: make(map[int]map[int]bool),
	}
}

// AddWeak records older ⪯_A newer.
func (o *TemporalOrder) AddWeak(older, newer int) {
	addEdge(o.succ, older, newer)
}

// AddStrict records older ≺_A newer (which implies older ⪯_A newer).
func (o *TemporalOrder) AddStrict(older, newer int) {
	addEdge(o.succ, older, newer)
	addEdge(o.strictSucc, older, newer)
}

func addEdge(m map[int]map[int]bool, from, to int) {
	s := m[from]
	if s == nil {
		s = make(map[int]bool)
		m[from] = s
	}
	s[to] = true
}

// Leq reports whether older ⪯_A newer holds in the transitive closure.
// Reflexivity: Leq(t, t) is always true.
func (o *TemporalOrder) Leq(older, newer int) bool {
	if older == newer {
		return true
	}
	return o.reach(o.succ, older, newer)
}

// Less reports whether older ≺_A newer holds: a weak path from older to
// newer that uses at least one strict edge.
func (o *TemporalOrder) Less(older, newer int) bool {
	if older == newer {
		return false
	}
	// BFS over weak edges tracking whether a strict edge has been used.
	type state struct {
		node   int
		strict bool
	}
	seen := map[state]bool{}
	queue := []state{{older, false}}
	for len(queue) > 0 {
		cur := queue[0]
		queue = queue[1:]
		for next := range o.succ[cur.node] {
			st := state{next, cur.strict || o.strictSucc[cur.node][next]}
			if st.node == newer && st.strict {
				return true
			}
			if !seen[st] {
				seen[st] = true
				queue = append(queue, st)
			}
		}
	}
	return false
}

func (o *TemporalOrder) reach(m map[int]map[int]bool, from, to int) bool {
	seen := map[int]bool{from: true}
	queue := []int{from}
	for len(queue) > 0 {
		cur := queue[0]
		queue = queue[1:]
		for next := range m[cur] {
			if next == to {
				return true
			}
			if !seen[next] {
				seen[next] = true
				queue = append(queue, next)
			}
		}
	}
	return false
}

// HasCycleOfStrict reports whether the order is invalid: some pair with both
// t1 ≺ t2 and t2 ⪯ t1 in the closure (paper §4.1 validity condition (b)).
func (o *TemporalOrder) HasCycleOfStrict() bool {
	for from, tos := range o.strictSucc {
		for to := range tos {
			if o.reach(o.succ, to, from) || to == from {
				return true
			}
		}
	}
	return false
}

// Clone deep-copies the order including strict edges.
func (o *TemporalOrder) Clone() *TemporalOrder {
	c := NewTemporalOrder(o.Rel, o.Attr)
	for from, tos := range o.succ {
		for to := range tos {
			addEdge(c.succ, from, to)
		}
	}
	for from, tos := range o.strictSucc {
		for to := range tos {
			addEdge(c.strictSucc, from, to)
		}
	}
	return c
}

// StrictPairs returns all stored strict pairs in deterministic order.
func (o *TemporalOrder) StrictPairs() [][2]int {
	var out [][2]int
	for from, tos := range o.strictSucc {
		for to := range tos {
			out = append(out, [2]int{from, to})
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i][0] != out[j][0] {
			return out[i][0] < out[j][0]
		}
		return out[i][1] < out[j][1]
	})
	return out
}

// Pairs returns all stored weak pairs (older, newer) in deterministic order;
// primarily for tests and reporting.
func (o *TemporalOrder) Pairs() [][2]int {
	var out [][2]int
	for from, tos := range o.succ {
		for to := range tos {
			out = append(out, [2]int{from, to})
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i][0] != out[j][0] {
			return out[i][0] < out[j][0]
		}
		return out[i][1] < out[j][1]
	})
	return out
}

// Latest returns the TIDs that are maximal under the order among the given
// candidates: no other candidate is strictly more current.
func (o *TemporalOrder) Latest(candidates []int) []int {
	var out []int
	for _, t := range candidates {
		dominated := false
		for _, u := range candidates {
			if u != t && o.Less(t, u) {
				dominated = true
				break
			}
		}
		if !dominated {
			out = append(out, t)
		}
	}
	sort.Ints(out)
	return out
}

// TemporalInstance bundles a database with temporal relations and one
// temporal order per (relation, attribute) — the D_t of paper §2.2.
type TemporalInstance struct {
	DB     *Database
	Stamps map[string]*TemporalRelation // by relation name
	Orders map[string]*TemporalOrder    // key: Rel + "." + Attr
}

// NewTemporalInstance wraps a database. All relations get (initially empty)
// timestamp maps; orders are created lazily.
func NewTemporalInstance(db *Database) *TemporalInstance {
	ti := &TemporalInstance{
		DB:     db,
		Stamps: make(map[string]*TemporalRelation),
		Orders: make(map[string]*TemporalOrder),
	}
	for name, r := range db.Relations {
		ti.Stamps[name] = NewTemporalRelation(r)
	}
	return ti
}

// Order returns (creating if needed) the temporal order for rel.attr.
func (ti *TemporalInstance) Order(rel, attr string) *TemporalOrder {
	key := rel + "." + attr
	o := ti.Orders[key]
	if o == nil {
		o = NewTemporalOrder(rel, attr)
		ti.Orders[key] = o
	}
	return o
}

// SeedFromTimestamps initialises each order from available timestamps: if
// T(t2[A]) and T(t1[A]) are both defined and T(t2[A]) ≤ T(t1[A]) then
// t2 ⪯_A t1 (paper §2.2). Strict pairs are added for strictly smaller
// timestamps.
func (ti *TemporalInstance) SeedFromTimestamps() {
	for name, tr := range ti.Stamps {
		rel := ti.DB.Rel(name)
		if rel == nil {
			continue
		}
		for _, attr := range rel.Schema.AttrNames() {
			type stamped struct {
				tid int
				ts  int64
			}
			var cells []stamped
			for _, t := range rel.Tuples {
				if ts, ok := tr.Timestamp(t.TID, attr); ok {
					cells = append(cells, stamped{t.TID, ts})
				}
			}
			if len(cells) < 2 {
				continue
			}
			o := ti.Order(name, attr)
			for i := 0; i < len(cells); i++ {
				for j := 0; j < len(cells); j++ {
					if i == j {
						continue
					}
					switch {
					case cells[i].ts < cells[j].ts:
						o.AddStrict(cells[i].tid, cells[j].tid)
					case cells[i].ts == cells[j].ts && cells[i].tid < cells[j].tid:
						o.AddWeak(cells[i].tid, cells[j].tid)
						o.AddWeak(cells[j].tid, cells[i].tid)
					}
				}
			}
		}
	}
}
