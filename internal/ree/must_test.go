package ree

import (
	"github.com/rockclean/rock/internal/data"
	"github.com/rockclean/rock/internal/kg"
)

// Test-only literal helper; the exported equivalent lives in
// internal/must, which this package cannot import (cycle).

func MustParse(text string, db *data.Database) *Rule {
	r, err := Parse(text, db)
	if err != nil {
		panic(err)
	}
	return r
}

func mustSchema(name string, attrs ...data.Attribute) *data.Schema {
	s, err := data.NewSchema(name, attrs...)
	if err != nil {
		panic(err)
	}
	return s
}

func mustEdge(g *kg.Graph, from kg.VertexID, label string, to kg.VertexID) {
	if err := g.AddEdge(from, label, to); err != nil {
		panic(err)
	}
}
