package ree

import (
	"testing"

	"github.com/rockclean/rock/internal/data"
	"github.com/rockclean/rock/internal/kg"
	"github.com/rockclean/rock/internal/ml"
	"github.com/rockclean/rock/internal/predicate"
)

func TestRelOfGraphOf(t *testing.T) {
	r := MustParse("Store(t) ^ vertex(x, Wiki) ^ HER(t, x) -> t.location = val(x.(LocationAt))", nil)
	if r.RelOf("t") != "Store" || r.RelOf("nope") != "" {
		t.Error("RelOf")
	}
	if r.GraphOf("x") != "Wiki" || r.GraphOf("t") != "" {
		t.Error("GraphOf")
	}
	if got := r.VertexAtoms[0].String(); got != "vertex(x, Wiki)" {
		t.Errorf("vertex atom string: %q", got)
	}
}

func TestReferenceSemanticsWithVertexAtoms(t *testing.T) {
	schema := mustSchema("Store",
		data.Attribute{Name: "name", Type: data.TString},
		data.Attribute{Name: "location", Type: data.TString},
	)
	rel := data.NewRelation(schema)
	rel.Insert("s1", data.S("Huawei Flagship"), data.S("Shanghai")) // wrong: Wiki says Beijing
	db := data.NewDatabase()
	db.Add(rel)
	env := predicate.NewEnv(db)
	g := kg.New("Wiki")
	store := g.AddVertex("Huawei Flagship")
	beijing := g.AddVertex("Beijing")
	mustEdge(g, store, "LocationAt", beijing)
	env.Graphs["Wiki"] = g
	env.HER["Store"] = ml.NewHERMatcher("HER", g, schema, 0.6, "name")
	env.PathM = ml.NewPathMatcher(g, 0.3)

	r := MustParse("Store(t) ^ vertex(x, Wiki) ^ HER(t, x) ^ match(t.location, x.(LocationAt)) -> t.location = val(x.(LocationAt))", db)
	r.ID = "phi7"
	vs, err := r.Violations(env, 0)
	if err != nil {
		t.Fatal(err)
	}
	// The store matches its Wiki vertex but its stored location disagrees
	// with the extracted value: one violation (bound to the store vertex).
	if len(vs) != 1 {
		t.Fatalf("violations=%d want 1", len(vs))
	}
	// Measure over vertex atoms also enumerates.
	supp, conf, err := r.Measure(env)
	if err != nil {
		t.Fatal(err)
	}
	if supp != 0 || conf != 0 {
		t.Errorf("all matches are violations: supp=%f conf=%f", supp, conf)
	}
}

func TestMeasureMissingGraphErrors(t *testing.T) {
	db := data.NewDatabase()
	db.Add(data.NewRelation(mustSchema("R", data.Attribute{Name: "a", Type: data.TString})))
	db.Rel("R").Insert("e", data.S("x"))
	env := predicate.NewEnv(db)
	r := MustParse("R(t) ^ vertex(x, Ghost) ^ HER(t, x) -> t.a = val(x.(P))", nil)
	if _, _, err := r.Measure(env); err == nil {
		t.Error("missing graph must error")
	}
}

func TestValidateAttributeChecksMLVectors(t *testing.T) {
	db := data.NewDatabase()
	db.Add(data.NewRelation(mustSchema("R",
		data.Attribute{Name: "a", Type: data.TString},
		data.Attribute{Name: "b", Type: data.TString})))
	good := MustParse("R(t) ^ R(s) ^ M_x(t[a,b], s[a,b]) -> t.a = s.a", nil)
	if err := good.Validate(db); err != nil {
		t.Errorf("valid ML vector rejected: %v", err)
	}
	bad := MustParse("R(t) ^ R(s) ^ M_x(t[a,ghost], s[a,b]) -> t.a = s.a", nil)
	if err := bad.Validate(db); err == nil {
		t.Error("unknown attr in ML vector must fail")
	}
}

func TestTaskOfCorrAndPredictConsequences(t *testing.T) {
	corr := MustParse("R(t) ^ t.a = 'x' -> t.b = M_d(t, b)", nil)
	if corr.TaskOf() != TaskMI {
		t.Error("M_d consequence is MI")
	}
	val := MustParse("R(t) ^ vertex(x, G) ^ HER(t, x) -> t.a = val(x.(P))", nil)
	if val.TaskOf() != TaskMI {
		t.Error("val consequence is MI")
	}
	rank := MustParse("R(t) ^ R(s) ^ t.a = s.a -> t <[b] s", nil)
	if rank.TaskOf() != TaskTD {
		t.Error("strict temporal consequence is TD")
	}
	if TaskER.String() != "ER" || TaskCR.String() != "CR" || TaskTD.String() != "TD" || TaskMI.String() != "MI" {
		t.Error("task names")
	}
}

func TestParseRankStrictRoundTrip(t *testing.T) {
	r := MustParse("R(t) ^ R(s) ^ M_rank(t, s, <[v]) -> t <[v] s", nil)
	if !r.X[0].Strict || !r.P0.Strict {
		t.Error("strict flags lost")
	}
	if _, err := Parse(r.String(), nil); err != nil {
		t.Errorf("strict rank round trip: %v", err)
	}
}
