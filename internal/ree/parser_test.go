package ree

import (
	"strings"
	"testing"

	"github.com/rockclean/rock/internal/data"
	"github.com/rockclean/rock/internal/predicate"
)

// paperRules are the example rules of the paper rewritten in the DSL.
var paperRules = []string{
	// ϕ1: ER via ML commodity matcher
	"Trans(t) ^ Trans(s) ^ M_ER(t[com], s[com]) ^ t.date = s.date ^ t.sid = s.sid -> t.eid = s.eid",
	// ϕ2: CR — same commodity, same manufactory
	"Trans(t) ^ Trans(s) ^ t.com = s.com -> t.mfg = s.mfg",
	// ϕ4: TD — marital status monotone
	"Person(t) ^ Person(s) ^ t.status = 'single' ^ s.status = 'married' -> t <=[status] s",
	// ϕ5: TD — comonotone attributes
	"Person(t) ^ Person(s) ^ t <=[status] s -> t <=[home] s",
	// ϕ6: TD — correlated ordering with accumulated sales
	"Store(t) ^ Store(s) ^ t.location = 'Shanghai' ^ s.location = 'Beijing' ^ t.accu_sales <= s.accu_sales -> t <=[location] s",
	// ϕ7: MI — extraction from the Wiki graph
	"Store(t) ^ vertex(x, Wiki) ^ HER(t, x) ^ match(t.location, x.(LocationAt)) -> t.location = val(x.(LocationAt))",
	// ϕ8: MI — ML prediction for missing price
	"Trans(t) ^ null(t.price) -> t.price = M_d(t, price)",
	// ϕ11: TD — ranking model
	"Person(t) ^ Person(s) ^ M_rank(t, s, <=[LN]) -> t <=[LN] s",
	// ϕ12: MI — logic imputation
	"Store(t) ^ t.location = 'Beijing' -> t.area_code = '010'",
	// correlation form
	"Store(t) ^ M_c(t, area_code='010') >= 0.8 -> t.area_code = '010'",
	// strict temporal + multi-attr ML
	"Person(t) ^ Person(s) ^ M_ad(t[home,zip], s[home,zip]) -> t <[home] s",
	// not-null guard
	"Trans(t) ^ !null(t.price) ^ t.price < 0 -> t.price = 0",
}

func TestParsePaperRules(t *testing.T) {
	for _, src := range paperRules {
		r, err := Parse(src, nil)
		if err != nil {
			t.Errorf("parse %q: %v", src, err)
			continue
		}
		// Round trip: String() must re-parse to the same String().
		r2, err := Parse(r.String(), nil)
		if err != nil {
			t.Errorf("re-parse %q (from %q): %v", r.String(), src, err)
			continue
		}
		if r.String() != r2.String() {
			t.Errorf("round trip mismatch:\n  1: %s\n  2: %s", r.String(), r2.String())
		}
	}
}

func TestParseKindsAndTasks(t *testing.T) {
	cases := []struct {
		src  string
		kind predicate.Kind
		task Task
	}{
		{paperRules[0], predicate.KEID, TaskER},
		{paperRules[1], predicate.KAttr, TaskCR},
		{paperRules[2], predicate.KTemporal, TaskTD},
		{paperRules[6], predicate.KPredict, TaskMI},
		{paperRules[5], predicate.KVal, TaskMI},
		{paperRules[8], predicate.KConst, TaskCR},
		{"Trans(t) ^ null(t.price) -> t.price = 100", predicate.KConst, TaskMI},
	}
	for _, c := range cases {
		r, err := Parse(c.src, nil)
		if err != nil {
			t.Fatalf("parse %q: %v", c.src, err)
		}
		if r.P0.Kind != c.kind {
			t.Errorf("%q: consequence kind=%d want %d", c.src, r.P0.Kind, c.kind)
		}
		if r.TaskOf() != c.task {
			t.Errorf("%q: task=%s want %s", c.src, r.TaskOf(), c.task)
		}
	}
}

func TestParseErrors(t *testing.T) {
	bad := []string{
		"",                                    // empty
		"Trans(t) -> ",                        // missing consequence
		"Trans(t) t.a = 1 -> t.b = 2",         // missing ^
		"Trans(t) ^ t.a = 'unterminated",      // bad literal
		"Trans(t) ^ s.a = 1 -> t.b = 2",       // unbound s
		"Trans(t) ^ Trans(t) -> t.a = 1",      // duplicate var
		"Trans(t) ^ t.a = 1 -> Trans(s)",      // atom as consequence
		"Trans(t) -> t.eid < s.eid",           // eid with ordering op + unbound
		"Trans(t) ^ M_c(t) >= 0.5 -> t.a=1",   // corr with one arg
		"Trans(t) ^ t.a = 1 -> t.b = 2 extra", // trailing tokens
	}
	for _, src := range bad {
		if _, err := Parse(src, nil); err == nil {
			t.Errorf("parse %q: expected error", src)
		}
	}
}

func TestParseWithSchemaCoercion(t *testing.T) {
	db := data.NewDatabase()
	db.Add(data.NewRelation(mustSchema("Trans",
		data.Attribute{Name: "price", Type: data.TFloat},
		data.Attribute{Name: "date", Type: data.TTime},
	)))
	r, err := Parse("Trans(t) ^ t.date = '2021-11-11' -> t.price = 6500", db)
	if err != nil {
		t.Fatal(err)
	}
	if r.X[0].C.Kind() != data.TTime {
		t.Errorf("date constant not coerced: %v", r.X[0].C.Kind())
	}
	if r.P0.C.Kind() != data.TFloat {
		t.Errorf("price constant not coerced: %v", r.P0.C.Kind())
	}
	// Unknown attribute must be rejected when a schema is available.
	if _, err := Parse("Trans(t) -> t.ghost = 1", db); err == nil {
		t.Error("unknown attribute must fail with schema")
	}
	if _, err := Parse("Ghost(t) -> t.a = 1", db); err == nil {
		t.Error("unknown relation must fail with schema")
	}
}

func TestParseAll(t *testing.T) {
	text := strings.Join([]string{
		"# comment",
		paperRules[0],
		"",
		paperRules[1],
	}, "\n")
	rules, err := ParseAll(text, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(rules) != 2 || rules[0].ID != "r1" || rules[1].ID != "r2" {
		t.Errorf("rules=%d ids=%s,%s", len(rules), rules[0].ID, rules[1].ID)
	}
	if _, err := ParseAll("good -> bad ^", nil); err == nil {
		t.Error("bad line must fail with line number")
	}
}

func TestHasML(t *testing.T) {
	withML := MustParse(paperRules[0], nil)
	if !withML.HasML() {
		t.Error("ϕ1 embeds M_ER")
	}
	pure := MustParse(paperRules[1], nil)
	if pure.HasML() {
		t.Error("ϕ2 is pure logic")
	}
	mlConsequence := MustParse(paperRules[6], nil)
	if !mlConsequence.HasML() {
		t.Error("M_d consequence is ML")
	}
}

func TestRuleClone(t *testing.T) {
	r := MustParse(paperRules[0], nil)
	c := r.Clone()
	c.X[0].Model = "changed"
	c.Atoms[0].Rel = "Other"
	if r.X[0].Model == "changed" || r.Atoms[0].Rel == "Other" {
		t.Error("clone is shallow")
	}
}

func TestEscapedQuoteInLiteral(t *testing.T) {
	r, err := Parse(`Store(t) -> t.name = 'O\'Brien'`, nil)
	if err != nil {
		t.Fatal(err)
	}
	if r.P0.C.Str() != "O'Brien" {
		t.Errorf("literal=%q", r.P0.C.Str())
	}
	// And the printed form re-parses.
	if _, err := Parse(r.String(), nil); err != nil {
		t.Errorf("re-parse escaped literal: %v", err)
	}
}
