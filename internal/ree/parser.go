package ree

import (
	"fmt"
	"strconv"
	"strings"
	"unicode"

	"github.com/rockclean/rock/internal/data"
	"github.com/rockclean/rock/internal/kg"
	"github.com/rockclean/rock/internal/predicate"
)

// Parse parses an REE++ rule from the textual DSL. When db is non-nil,
// constant literals are coerced to the attribute's schema type and
// attribute references are validated.
//
// Grammar (conjuncts joined by "^", consequence after "->"):
//
//	Trans(t) ^ Trans(s) ^ M_ER(t[com], s[com]) ^ t.date = s.date -> t.eid = s.eid
//	Person(t) ^ Person(s) ^ t.status = 'single' ^ s.status = 'married' -> t <=[status] s
//	Person(t) ^ Person(s) ^ M_rank(t, s, <=[LN]) -> t <=[LN] s
//	Store(t) ^ vertex(x, Wiki) ^ HER(t, x) ^ match(t.location, x.(LocationAt)) -> t.location = val(x.(LocationAt))
//	Trans(t) ^ null(t.price) -> t.price = M_d(t, price)
//	Store(t) ^ M_c(t, area_code='010') >= 0.8 -> t.area_code = '010'
func Parse(text string, db *data.Database) (*Rule, error) {
	toks, err := lex(text)
	if err != nil {
		return nil, err
	}
	p := &parser{toks: toks, text: text}
	rule, err := p.parseRule()
	if err != nil {
		return nil, err
	}
	if db != nil {
		coerceConstants(rule, db)
		if err := rule.Validate(db); err != nil {
			return nil, err
		}
	} else if err := rule.Validate(nil); err != nil {
		return nil, err
	}
	return rule, nil
}

// ParseAll parses one rule per non-empty, non-comment ("#") line.
func ParseAll(text string, db *data.Database) ([]*Rule, error) {
	var rules []*Rule
	for i, line := range strings.Split(text, "\n") {
		line = strings.TrimSpace(line)
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		r, err := Parse(line, db)
		if err != nil {
			return nil, fmt.Errorf("line %d: %w", i+1, err)
		}
		r.ID = fmt.Sprintf("r%d", len(rules)+1)
		rules = append(rules, r)
	}
	return rules, nil
}

// --- lexer ---

type tokKind int

const (
	tokIdent tokKind = iota
	tokNumber
	tokString
	tokPunct // single/multi-char punctuation: ( ) [ ] , . ^ -> = != < <= > >= !
	tokEOF
)

type token struct {
	kind tokKind
	text string
	pos  int
}

func lex(s string) ([]token, error) {
	var toks []token
	i := 0
	for i < len(s) {
		c := s[i]
		switch {
		case c == ' ' || c == '\t' || c == '\n' || c == '\r':
			i++
		case c == '\'':
			j := i + 1
			var sb strings.Builder
			for j < len(s) && s[j] != '\'' {
				if s[j] == '\\' && j+1 < len(s) {
					j++
				}
				sb.WriteByte(s[j])
				j++
			}
			if j >= len(s) {
				return nil, fmt.Errorf("pos %d: unterminated string literal", i)
			}
			toks = append(toks, token{tokString, sb.String(), i})
			i = j + 1
		case isIdentStart(rune(c)):
			j := i
			for j < len(s) && isIdentPart(rune(s[j])) {
				j++
			}
			toks = append(toks, token{tokIdent, s[i:j], i})
			i = j
		case c >= '0' && c <= '9' || (c == '-' && i+1 < len(s) && s[i+1] >= '0' && s[i+1] <= '9'):
			j := i + 1
			for j < len(s) && (s[j] >= '0' && s[j] <= '9' || s[j] == '.' || s[j] == 'e' || s[j] == 'E' || s[j] == '-' || s[j] == '+') {
				// Don't swallow "." when it is not followed by a digit (e.g. "t.A").
				if s[j] == '.' && (j+1 >= len(s) || s[j+1] < '0' || s[j+1] > '9') {
					break
				}
				j++
			}
			toks = append(toks, token{tokNumber, s[i:j], i})
			i = j
		default:
			switch {
			case strings.HasPrefix(s[i:], "->"):
				toks = append(toks, token{tokPunct, "->", i})
				i += 2
			case strings.HasPrefix(s[i:], "!="):
				toks = append(toks, token{tokPunct, "!=", i})
				i += 2
			case strings.HasPrefix(s[i:], "<="):
				toks = append(toks, token{tokPunct, "<=", i})
				i += 2
			case strings.HasPrefix(s[i:], ">="):
				toks = append(toks, token{tokPunct, ">=", i})
				i += 2
			case strings.ContainsRune("()[],.^=<>!", rune(c)):
				toks = append(toks, token{tokPunct, string(c), i})
				i++
			case strings.HasPrefix(s[i:], "∧"):
				toks = append(toks, token{tokPunct, "^", i})
				i += len("∧")
			default:
				return nil, fmt.Errorf("pos %d: unexpected character %q", i, c)
			}
		}
	}
	toks = append(toks, token{tokEOF, "", len(s)})
	return toks, nil
}

func isIdentStart(r rune) bool { return unicode.IsLetter(r) || r == '_' }
func isIdentPart(r rune) bool  { return unicode.IsLetter(r) || unicode.IsDigit(r) || r == '_' }

// --- parser ---

type parser struct {
	toks []token
	i    int
	text string
}

func (p *parser) peek() token  { return p.toks[p.i] }
func (p *parser) peek2() token { return p.toks[min(p.i+1, len(p.toks)-1)] }
func (p *parser) next() token {
	t := p.toks[p.i]
	if p.i < len(p.toks)-1 {
		p.i++
	}
	return t
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}

func (p *parser) expect(text string) error {
	t := p.next()
	if t.text != text {
		return p.errf(t, "expected %q, got %q", text, t.text)
	}
	return nil
}

func (p *parser) errf(t token, format string, args ...interface{}) error {
	return fmt.Errorf("parse %q at pos %d: %s", p.text, t.pos, fmt.Sprintf(format, args...))
}

// parsed is one parsed conjunct: either an atom, a vertex atom, or a
// predicate.
type parsed struct {
	atom  *Atom
	vatom *VertexAtom
	pred  *predicate.Predicate
}

func (p *parser) parseRule() (*Rule, error) {
	rule := &Rule{}
	for {
		c, err := p.parseConjunct()
		if err != nil {
			return nil, err
		}
		switch {
		case c.atom != nil:
			rule.Atoms = append(rule.Atoms, *c.atom)
		case c.vatom != nil:
			rule.VertexAtoms = append(rule.VertexAtoms, *c.vatom)
		default:
			rule.X = append(rule.X, c.pred)
		}
		t := p.next()
		if t.text == "^" {
			continue
		}
		if t.text == "->" {
			break
		}
		return nil, p.errf(t, "expected '^' or '->', got %q", t.text)
	}
	c, err := p.parseConjunct()
	if err != nil {
		return nil, err
	}
	if c.pred == nil {
		return nil, fmt.Errorf("parse %q: consequence must be a predicate, not an atom", p.text)
	}
	if t := p.peek(); t.kind != tokEOF {
		return nil, p.errf(t, "trailing input %q", t.text)
	}
	rule.P0 = c.pred
	return rule, nil
}

func (p *parser) parseConjunct() (parsed, error) {
	t := p.peek()
	switch {
	case t.text == "!":
		p.next()
		if err := p.expect("null"); err != nil {
			return parsed{}, err
		}
		pr, err := p.parseNullArgs()
		if err != nil {
			return parsed{}, err
		}
		pr.Kind = predicate.KNotNull
		return parsed{pred: pr}, nil
	case t.kind == tokIdent && p.peek2().text == "(":
		return p.parseCall()
	case t.kind == tokIdent:
		return p.parseTermExpr()
	default:
		return parsed{}, p.errf(t, "expected predicate")
	}
}

// parseCall handles Name(...) forms: relation atoms, vertex(), null(),
// match(), and model calls.
func (p *parser) parseCall() (parsed, error) {
	name := p.next().text
	if err := p.expect("("); err != nil {
		return parsed{}, err
	}
	switch name {
	case "vertex":
		varName := p.next()
		if varName.kind != tokIdent {
			return parsed{}, p.errf(varName, "vertex(): expected variable")
		}
		if err := p.expect(","); err != nil {
			return parsed{}, err
		}
		graph := p.next()
		if graph.kind != tokIdent {
			return parsed{}, p.errf(graph, "vertex(): expected graph name")
		}
		if err := p.expect(")"); err != nil {
			return parsed{}, err
		}
		return parsed{vatom: &VertexAtom{Graph: graph.text, Var: varName.text}}, nil
	case "null":
		pr, err := p.parseNullArgsAfterParen()
		if err != nil {
			return parsed{}, err
		}
		return parsed{pred: pr}, nil
	case "match":
		// match(t.A, x.(path))
		tv, attr, err := p.parseVarDotAttr()
		if err != nil {
			return parsed{}, err
		}
		if err := p.expect(","); err != nil {
			return parsed{}, err
		}
		xv, path, err := p.parseVarDotPath()
		if err != nil {
			return parsed{}, err
		}
		if err := p.expect(")"); err != nil {
			return parsed{}, err
		}
		return parsed{pred: &predicate.Predicate{Kind: predicate.KMatch, T: tv, A: attr, X: xv, Path: path}}, nil
	}
	// Either a relation atom R(t) or a model call.
	if p.peek().kind == tokIdent && p.peek2().text == ")" {
		varName := p.next().text
		p.next() // ')'
		return parsed{atom: &Atom{Rel: name, Var: varName}}, nil
	}
	return p.parseModelCall(name)
}

// parseModelCall handles M_ER(t[A,B], s[C]), M_rank(t, s, <=[A]),
// HER(t, x), and M_c(t, B[=c]) [>= δ].
func (p *parser) parseModelCall(name string) (parsed, error) {
	type arg struct {
		varName string
		attrs   []string // nil for bare var
		dotAttr string   // var.attr single form
		isOp    bool     // <=[A] form
		strict  bool
		opAttr  string
		ident   string     // bare identifier (attr name for corr)
		cval    data.Value // constant after ident=
		hasC    bool
	}
	var args []arg
	for {
		t := p.peek()
		switch {
		case t.text == "<=" || t.text == "<":
			p.next()
			strict := t.text == "<"
			if err := p.expect("["); err != nil {
				return parsed{}, err
			}
			attr := p.next()
			if attr.kind != tokIdent {
				return parsed{}, p.errf(attr, "expected attribute in temporal op")
			}
			if err := p.expect("]"); err != nil {
				return parsed{}, err
			}
			args = append(args, arg{isOp: true, strict: strict, opAttr: attr.text})
		case t.kind == tokIdent:
			id := p.next().text
			switch p.peek().text {
			case "[":
				p.next()
				var attrs []string
				for {
					a := p.next()
					if a.kind != tokIdent {
						return parsed{}, p.errf(a, "expected attribute in vector")
					}
					attrs = append(attrs, a.text)
					if p.peek().text == "," {
						p.next()
						continue
					}
					break
				}
				if err := p.expect("]"); err != nil {
					return parsed{}, err
				}
				args = append(args, arg{varName: id, attrs: attrs})
			case ".":
				p.next()
				a := p.next()
				if a.kind != tokIdent {
					return parsed{}, p.errf(a, "expected attribute after '.'")
				}
				args = append(args, arg{varName: id, dotAttr: a.text})
			case "=":
				p.next()
				v, err := p.parseLiteral()
				if err != nil {
					return parsed{}, err
				}
				args = append(args, arg{ident: id, cval: v, hasC: true})
			default:
				args = append(args, arg{ident: id})
			}
		default:
			return parsed{}, p.errf(t, "unexpected token in model call")
		}
		if p.peek().text == "," {
			p.next()
			continue
		}
		break
	}
	if err := p.expect(")"); err != nil {
		return parsed{}, err
	}
	// Optional ">= δ" suffix marks a correlation predicate.
	if p.peek().text == ">=" {
		p.next()
		num := p.next()
		if num.kind != tokNumber {
			return parsed{}, p.errf(num, "expected threshold after '>='")
		}
		delta, err := strconv.ParseFloat(num.text, 64)
		if err != nil {
			return parsed{}, p.errf(num, "bad threshold: %v", err)
		}
		if len(args) != 2 || args[0].ident == "" && args[0].varName == "" {
			return parsed{}, fmt.Errorf("parse %q: correlation predicate needs (var, attr[=const])", p.text)
		}
		tv := args[0].ident
		if tv == "" {
			tv = args[0].varName
		}
		pr := &predicate.Predicate{Kind: predicate.KCorr, Model: name, T: tv, B: args[1].ident, Delta: delta}
		if args[1].hasC {
			pr.C = args[1].cval
		}
		if pr.B == "" {
			return parsed{}, fmt.Errorf("parse %q: correlation predicate needs attribute as second arg", p.text)
		}
		return parsed{pred: pr}, nil
	}
	// M_rank(t, s, <=[A])
	if len(args) == 3 && args[2].isOp {
		if args[0].ident == "" || args[1].ident == "" {
			return parsed{}, fmt.Errorf("parse %q: ranking predicate needs two tuple variables", p.text)
		}
		return parsed{pred: &predicate.Predicate{
			Kind: predicate.KRank, Model: name,
			T: args[0].ident, S: args[1].ident,
			A: args[2].opAttr, Strict: args[2].strict,
		}}, nil
	}
	// HER(t, x): two bare identifiers.
	if len(args) == 2 && args[0].ident != "" && args[1].ident != "" {
		return parsed{pred: &predicate.Predicate{Kind: predicate.KHER, Model: name, T: args[0].ident, X: args[1].ident}}, nil
	}
	// M(t[...], s[...]) or M(t.A, s.B)
	if len(args) == 2 {
		toVec := func(a arg) (string, []string, bool) {
			if a.attrs != nil {
				return a.varName, a.attrs, true
			}
			if a.dotAttr != "" {
				return a.varName, []string{a.dotAttr}, true
			}
			return "", nil, false
		}
		tv, as, ok1 := toVec(args[0])
		sv, bs, ok2 := toVec(args[1])
		if ok1 && ok2 {
			return parsed{pred: &predicate.Predicate{Kind: predicate.KML, Model: name, T: tv, S: sv, As: as, Bs: bs}}, nil
		}
	}
	return parsed{}, fmt.Errorf("parse %q: unrecognised model call %s(...)", p.text, name)
}

func (p *parser) parseNullArgs() (*predicate.Predicate, error) {
	if err := p.expect("("); err != nil {
		return nil, err
	}
	return p.parseNullArgsAfterParen()
}

func (p *parser) parseNullArgsAfterParen() (*predicate.Predicate, error) {
	tv, attr, err := p.parseVarDotAttr()
	if err != nil {
		return nil, err
	}
	if err := p.expect(")"); err != nil {
		return nil, err
	}
	return &predicate.Predicate{Kind: predicate.KNull, T: tv, A: attr}, nil
}

func (p *parser) parseVarDotAttr() (string, string, error) {
	v := p.next()
	if v.kind != tokIdent {
		return "", "", p.errf(v, "expected variable")
	}
	if err := p.expect("."); err != nil {
		return "", "", err
	}
	a := p.next()
	if a.kind != tokIdent {
		return "", "", p.errf(a, "expected attribute")
	}
	return v.text, a.text, nil
}

func (p *parser) parseVarDotPath() (string, kg.Path, error) {
	v := p.next()
	if v.kind != tokIdent {
		return "", nil, p.errf(v, "expected vertex variable")
	}
	if err := p.expect("."); err != nil {
		return "", nil, err
	}
	if err := p.expect("("); err != nil {
		return "", nil, err
	}
	var path kg.Path
	for {
		l := p.next()
		if l.kind != tokIdent {
			return "", nil, p.errf(l, "expected path label")
		}
		path = append(path, l.text)
		if p.peek().text == "." {
			p.next()
			continue
		}
		break
	}
	if err := p.expect(")"); err != nil {
		return "", nil, err
	}
	return v.text, path, nil
}

func (p *parser) parseLiteral() (data.Value, error) {
	t := p.next()
	switch t.kind {
	case tokString:
		return data.S(t.text), nil
	case tokNumber:
		if strings.ContainsAny(t.text, ".eE") {
			f, err := strconv.ParseFloat(t.text, 64)
			if err != nil {
				return data.Value{}, p.errf(t, "bad number: %v", err)
			}
			return data.F(f), nil
		}
		n, err := strconv.ParseInt(t.text, 10, 64)
		if err != nil {
			return data.Value{}, p.errf(t, "bad number: %v", err)
		}
		return data.I(n), nil
	case tokIdent:
		switch t.text {
		case "null":
			return data.Value{}, nil
		case "true":
			return data.B(true), nil
		case "false":
			return data.B(false), nil
		}
	}
	return data.Value{}, p.errf(t, "expected literal")
}

// parseTermExpr handles conjuncts starting with a variable:
// t.A op (literal | s.B | val(x.ρ) | M_d(t, B)) and the temporal forms
// t <=[A] s / t <[A] s.
func (p *parser) parseTermExpr() (parsed, error) {
	v := p.next().text
	t := p.peek()
	// Temporal: t <=[A] s
	if (t.text == "<=" || t.text == "<") && p.peek2().text == "[" {
		p.next()
		strict := t.text == "<"
		p.next() // '['
		attr := p.next()
		if attr.kind != tokIdent {
			return parsed{}, p.errf(attr, "expected attribute in temporal predicate")
		}
		if err := p.expect("]"); err != nil {
			return parsed{}, err
		}
		s := p.next()
		if s.kind != tokIdent {
			return parsed{}, p.errf(s, "expected tuple variable after temporal op")
		}
		return parsed{pred: &predicate.Predicate{Kind: predicate.KTemporal, T: v, S: s.text, A: attr.text, Strict: strict}}, nil
	}
	if err := p.expect("."); err != nil {
		return parsed{}, err
	}
	attrTok := p.next()
	if attrTok.kind != tokIdent {
		return parsed{}, p.errf(attrTok, "expected attribute")
	}
	attr := attrTok.text
	opTok := p.next()
	var op predicate.Op
	switch opTok.text {
	case "=":
		op = predicate.Eq
	case "!=":
		op = predicate.Neq
	case "<":
		op = predicate.Lt
	case "<=":
		op = predicate.Leq
	case ">":
		op = predicate.Gt
	case ">=":
		op = predicate.Geq
	default:
		return parsed{}, p.errf(opTok, "expected comparison operator")
	}
	rhs := p.peek()
	// t.A = val(x.ρ)
	if rhs.kind == tokIdent && rhs.text == "val" && p.peek2().text == "(" && op == predicate.Eq {
		p.next()
		p.next() // '('
		xv, path, err := p.parseVarDotPath()
		if err != nil {
			return parsed{}, err
		}
		if err := p.expect(")"); err != nil {
			return parsed{}, err
		}
		return parsed{pred: &predicate.Predicate{Kind: predicate.KVal, T: v, A: attr, X: xv, Path: path}}, nil
	}
	// t.B = M_d(t, B)
	if rhs.kind == tokIdent && p.peek2().text == "(" && op == predicate.Eq {
		model := p.next().text
		p.next() // '('
		tv := p.next()
		if tv.kind != tokIdent {
			return parsed{}, p.errf(tv, "expected tuple variable in predictor call")
		}
		if err := p.expect(","); err != nil {
			return parsed{}, err
		}
		battr := p.next()
		if battr.kind != tokIdent {
			return parsed{}, p.errf(battr, "expected attribute in predictor call")
		}
		if err := p.expect(")"); err != nil {
			return parsed{}, err
		}
		if battr.text != attr || tv.text != v {
			return parsed{}, fmt.Errorf("parse %q: predictor consequence must be of form t.B = M(t, B)", p.text)
		}
		return parsed{pred: &predicate.Predicate{Kind: predicate.KPredict, Model: model, T: v, B: attr}}, nil
	}
	// t.A op s.B
	if rhs.kind == tokIdent && p.peek2().text == "." {
		sv := p.next().text
		p.next() // '.'
		battr := p.next()
		if battr.kind != tokIdent {
			return parsed{}, p.errf(battr, "expected attribute")
		}
		if strings.EqualFold(attr, "eid") && strings.EqualFold(battr.text, "eid") {
			if op != predicate.Eq && op != predicate.Neq {
				return parsed{}, fmt.Errorf("parse %q: eid comparison supports only = and !=", p.text)
			}
			return parsed{pred: &predicate.Predicate{Kind: predicate.KEID, Op: op, T: v, S: sv}}, nil
		}
		return parsed{pred: &predicate.Predicate{Kind: predicate.KAttr, Op: op, T: v, A: attr, S: sv, B: battr.text}}, nil
	}
	// t.A op literal
	lit, err := p.parseLiteral()
	if err != nil {
		return parsed{}, err
	}
	return parsed{pred: &predicate.Predicate{Kind: predicate.KConst, Op: op, T: v, A: attr, C: lit}}, nil
}

// coerceConstants converts constant operands to the schema type of the
// attribute they are compared with (e.g. a quoted date becomes TTime).
func coerceConstants(r *Rule, db *data.Database) {
	fix := func(p *predicate.Predicate) {
		var attr string
		switch p.Kind {
		case predicate.KConst:
			attr = p.A
		case predicate.KCorr:
			attr = p.B
		default:
			return
		}
		if p.C.IsNull() {
			return
		}
		rel := r.RelOf(p.T)
		if rel == "" {
			return
		}
		rr := db.Rel(rel)
		if rr == nil {
			return
		}
		want, ok := rr.Schema.TypeOf(attr)
		if !ok || want == p.C.Kind() {
			return
		}
		if v, err := data.Parse(want, p.C.String()); err == nil {
			p.C = v
		}
	}
	for _, p := range r.X {
		fix(p)
	}
	fix(r.P0)
}
