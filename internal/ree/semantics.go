package ree

import (
	"fmt"

	"github.com/rockclean/rock/internal/data"
	"github.com/rockclean/rock/internal/predicate"
)

// Violation is a valuation h witnessing D ̸|= φ: h |= X but h ̸|= p0
// (paper §4.2). It identifies the involved tuples so error reporting can
// point at cells.
type Violation struct {
	Rule *Rule
	H    *predicate.Valuation
}

// String renders the violation compactly.
func (v *Violation) String() string {
	s := "violation of " + v.Rule.ID + " {"
	first := true
	for name, b := range v.H.Tuples {
		if !first {
			s += ", "
		}
		first = false
		s += fmt.Sprintf("%s->%s[%d]", name, b.Rel, b.Tuple.TID)
	}
	return s + "}"
}

// enumerate walks every valuation of the rule's tuple atoms in D (and
// vertex atoms in the registered graphs), calling fn; fn returning false
// stops the walk. Valuations binding two variables of the same relation to
// the same tuple are skipped for two-variable predicates' sake only when
// the rule compares a variable with itself implicitly — following the
// standard REE semantics, identical bindings are allowed but trivial
// self-pairs (t=s on every attribute) are skipped to avoid vacuous matches.
func (r *Rule) enumerate(env *predicate.Env, fn func(h *predicate.Valuation) (bool, error)) error {
	var rec func(i int, h *predicate.Valuation) (bool, error)
	rec = func(i int, h *predicate.Valuation) (bool, error) {
		if i == len(r.Atoms) {
			return r.enumerateVertices(env, 0, h, fn)
		}
		a := r.Atoms[i]
		rel := env.DB.Rel(a.Rel)
		if rel == nil {
			return false, fmt.Errorf("rule %s: relation %q not in database", r.ID, a.Rel)
		}
		for _, t := range rel.Tuples {
			if skipSelfPair(r, h, a, t) {
				continue
			}
			h.Bind(a.Var, a.Rel, t)
			cont, err := rec(i+1, h)
			if err != nil || !cont {
				delete(h.Tuples, a.Var)
				return cont, err
			}
		}
		delete(h.Tuples, a.Var)
		return true, nil
	}
	_, err := rec(0, predicate.NewValuation())
	return err
}

func (r *Rule) enumerateVertices(env *predicate.Env, i int, h *predicate.Valuation, fn func(h *predicate.Valuation) (bool, error)) (bool, error) {
	if i == len(r.VertexAtoms) {
		return fn(h)
	}
	a := r.VertexAtoms[i]
	g := env.Graphs[a.Graph]
	if g == nil {
		return false, fmt.Errorf("rule %s: graph %q not registered", r.ID, a.Graph)
	}
	for _, v := range g.VertexIDs() {
		h.BindVertex(a.Var, a.Graph, v)
		cont, err := r.enumerateVertices(env, i+1, h, fn)
		if err != nil || !cont {
			delete(h.Vertices, a.Var)
			return cont, err
		}
	}
	delete(h.Vertices, a.Var)
	return true, nil
}

// skipSelfPair suppresses binding a second variable of the same relation to
// the exact same tuple — the standard convention so that rules like
// R(t) ^ R(s) ^ t.A = s.A -> t.B = s.B don't match each tuple against
// itself.
func skipSelfPair(r *Rule, h *predicate.Valuation, a Atom, t *data.Tuple) bool {
	for _, b := range h.Tuples {
		if b.Rel == a.Rel && b.Tuple.TID == t.TID {
			return true
		}
	}
	return false
}

// HoldsX evaluates h |= X.
func (r *Rule) HoldsX(env *predicate.Env, h *predicate.Valuation) (bool, error) {
	for _, p := range r.X {
		ok, err := p.Eval(env, h)
		if err != nil {
			return false, err
		}
		if !ok {
			return false, nil
		}
	}
	return true, nil
}

// Violations enumerates all violations of the rule in the environment's
// database, up to limit (limit <= 0 means unlimited). This is the
// reference (naive) evaluator; package detect provides the blocked,
// parallel one.
func (r *Rule) Violations(env *predicate.Env, limit int) ([]*Violation, error) {
	var out []*Violation
	err := r.enumerate(env, func(h *predicate.Valuation) (bool, error) {
		okX, err := r.HoldsX(env, h)
		if err != nil {
			return false, err
		}
		if !okX {
			return true, nil
		}
		okP0, err := r.P0.Eval(env, h)
		if err != nil {
			return false, err
		}
		if !okP0 {
			out = append(out, &Violation{Rule: r, H: cloneValuation(h)})
			if limit > 0 && len(out) >= limit {
				return false, nil
			}
		}
		return true, nil
	})
	return out, err
}

// Satisfied reports whether D |= φ: no violations exist.
func (r *Rule) Satisfied(env *predicate.Env) (bool, error) {
	vs, err := r.Violations(env, 1)
	if err != nil {
		return false, err
	}
	return len(vs) == 0, nil
}

// Measure computes support and confidence of the rule over the
// environment's database:
//
//	support    = #valuations with h |= X and h |= p0, normalised by the
//	             total number of valuations;
//	confidence = #(h |= X ∧ p0) / #(h |= X).
//
// These are the objective measures used by rule discovery (paper §3,
// "Rule discovery"; [36, 37]).
func (r *Rule) Measure(env *predicate.Env) (support, confidence float64, err error) {
	var total, matchX, matchBoth int
	err = r.enumerate(env, func(h *predicate.Valuation) (bool, error) {
		total++
		okX, err := r.HoldsX(env, h)
		if err != nil {
			return false, err
		}
		if !okX {
			return true, nil
		}
		matchX++
		okP0, err := r.P0.Eval(env, h)
		if err != nil {
			return false, err
		}
		if okP0 {
			matchBoth++
		}
		return true, nil
	})
	if err != nil {
		return 0, 0, err
	}
	if total > 0 {
		support = float64(matchBoth) / float64(total)
	}
	if matchX > 0 {
		confidence = float64(matchBoth) / float64(matchX)
	}
	return support, confidence, nil
}

func cloneValuation(h *predicate.Valuation) *predicate.Valuation {
	c := predicate.NewValuation()
	for k, v := range h.Tuples {
		c.Tuples[k] = v
	}
	for k, v := range h.Vertices {
		c.Vertices[k] = v
	}
	return c
}
