package ree

import (
	"testing"
)

// FuzzParse hardens the DSL parser: arbitrary input must produce a rule
// or an error, never a panic, and every successfully parsed rule must
// print to a form that re-parses to the same text (printer/parser
// round-trip stability).
func FuzzParse(f *testing.F) {
	seeds := []string{
		"Trans(t) ^ Trans(s) ^ t.com = s.com -> t.mfg = s.mfg",
		"Person(t) ^ Person(s) ^ M_rank(t, s, <=[LN]) -> t <=[LN] s",
		"Store(t) ^ vertex(x, Wiki) ^ HER(t, x) ^ match(t.location, x.(LocationAt)) -> t.location = val(x.(LocationAt))",
		"Trans(t) ^ null(t.price) -> t.price = M_d(t, price)",
		"Store(t) ^ M_c(t, area_code='010') >= 0.8 -> t.area_code = '010'",
		"R(t) -> t.a = 'x'",
		"R(t) ^ t.a != 1 -> t.b >= 2.5",
		"R(t) ^ !null(t.a) -> t.a = null",
		"R(t",
		"-> x",
		"R(t) ^ ^ -> t.a = 1",
		"R(t) ^ t.a = 'unterminated -> t.b = 1",
		"∧∧∧",
		"R(t) ^ M(t[a,b], s[c]) -> t.eid = s.eid",
		"R(t) ^ t.a = -3.5e2 -> t.b = 'v'",
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, src string) {
		r, err := Parse(src, nil)
		if err != nil || r == nil {
			return
		}
		printed := r.String()
		r2, err := Parse(printed, nil)
		if err != nil {
			t.Fatalf("printed form does not re-parse:\n  src: %q\n  printed: %q\n  err: %v", src, printed, err)
		}
		if r2.String() != printed {
			t.Fatalf("printer not a fixpoint:\n  first: %q\n  second: %q", printed, r2.String())
		}
	})
}
