// Package ree defines REE++ rules — extended entity enhancing rules of the
// form X → p0, where X is a conjunction of predicates over relation and
// vertex atoms and p0 is a single consequence predicate (paper §2). It
// provides a textual DSL with parser/printer, rule well-formedness checks,
// satisfaction and violation semantics, and support/confidence measures.
package ree

import (
	"fmt"
	"strings"

	"github.com/rockclean/rock/internal/data"
	"github.com/rockclean/rock/internal/predicate"
)

// Atom binds a tuple variable to a relation schema: R(t).
type Atom struct {
	Rel string
	Var string
}

// String renders R(t).
func (a Atom) String() string { return a.Rel + "(" + a.Var + ")" }

// VertexAtom binds a vertex variable to a knowledge graph: vertex(x, G).
type VertexAtom struct {
	Graph string
	Var   string
}

// String renders vertex(x, G).
func (a VertexAtom) String() string { return "vertex(" + a.Var + ", " + a.Graph + ")" }

// Rule is an REE++ φ : X → p0. All tuple/vertex variables occurring in the
// rule must be bound by Atoms/VertexAtoms (checked by Validate).
type Rule struct {
	ID          string
	Atoms       []Atom
	VertexAtoms []VertexAtom
	// X is the precondition: a conjunction of predicates.
	X []*predicate.Predicate
	// P0 is the consequence.
	P0 *predicate.Predicate

	// Support and Confidence are the objective quality measures attached
	// by rule discovery; zero when hand-written.
	Support    float64
	Confidence float64
	// Score is the subjective preference score learned from user labels
	// (top-k discovery); zero when unscored.
	Score float64
}

// RelOf returns the relation bound to the tuple variable, or "".
func (r *Rule) RelOf(varName string) string {
	for _, a := range r.Atoms {
		if a.Var == varName {
			return a.Rel
		}
	}
	return ""
}

// GraphOf returns the graph bound to the vertex variable, or "".
func (r *Rule) GraphOf(varName string) string {
	for _, a := range r.VertexAtoms {
		if a.Var == varName {
			return a.Graph
		}
	}
	return ""
}

// Validate checks well-formedness: unique variables, every predicate
// variable bound, attribute references resolvable when schemas are given
// (db may be nil to skip schema checks).
func (r *Rule) Validate(db *data.Database) error {
	seen := map[string]bool{}
	for _, a := range r.Atoms {
		if a.Var == "" || a.Rel == "" {
			return fmt.Errorf("rule %s: malformed atom %v", r.ID, a)
		}
		if seen[a.Var] {
			return fmt.Errorf("rule %s: duplicate variable %q", r.ID, a.Var)
		}
		seen[a.Var] = true
		if db != nil && db.Rel(a.Rel) == nil {
			return fmt.Errorf("rule %s: unknown relation %q", r.ID, a.Rel)
		}
	}
	for _, a := range r.VertexAtoms {
		if seen[a.Var] {
			return fmt.Errorf("rule %s: duplicate variable %q", r.ID, a.Var)
		}
		seen[a.Var] = true
	}
	if r.P0 == nil {
		return fmt.Errorf("rule %s: missing consequence", r.ID)
	}
	check := func(p *predicate.Predicate) error {
		for _, v := range p.Vars() {
			if !seen[v] {
				return fmt.Errorf("rule %s: predicate %s uses unbound tuple variable %q", r.ID, p, v)
			}
		}
		for _, v := range p.VertexVars() {
			if !seen[v] {
				return fmt.Errorf("rule %s: predicate %s uses unbound vertex variable %q", r.ID, p, v)
			}
		}
		if db != nil {
			if err := r.checkAttrs(db, p); err != nil {
				return err
			}
		}
		return nil
	}
	for _, p := range r.X {
		if err := check(p); err != nil {
			return err
		}
	}
	return check(r.P0)
}

func (r *Rule) checkAttrs(db *data.Database, p *predicate.Predicate) error {
	need := func(varName, attr string) error {
		if attr == "" || varName == "" {
			return nil
		}
		rel := r.RelOf(varName)
		if rel == "" {
			return nil // vertex-side or unbound (caught elsewhere)
		}
		rr := db.Rel(rel)
		if rr == nil {
			return nil
		}
		if !rr.Schema.Has(attr) {
			return fmt.Errorf("rule %s: %s has no attribute %q (predicate %s)", r.ID, rel, attr, p)
		}
		return nil
	}
	if err := need(p.T, p.A); err != nil {
		return err
	}
	if p.Kind == predicate.KCorr || p.Kind == predicate.KPredict {
		if err := need(p.T, p.B); err != nil {
			return err
		}
	} else if err := need(p.S, p.B); err != nil {
		return err
	}
	for _, a := range p.As {
		if err := need(p.T, a); err != nil {
			return err
		}
	}
	for _, b := range p.Bs {
		if err := need(p.S, b); err != nil {
			return err
		}
	}
	return nil
}

// HasML reports whether any predicate of the rule invokes an ML model —
// used by the RockNoML ablation to drop ML rules.
func (r *Rule) HasML() bool {
	for _, p := range r.X {
		if p.IsML() {
			return true
		}
	}
	return r.P0.IsML()
}

// Task classifies the rule by its consequence into the four cleaning tasks
// of paper §4.2.
type Task int

// Cleaning tasks.
const (
	TaskER Task = iota // consequence t.eid ⊕ s.eid
	TaskCR             // consequence t.A ⊕ c or t.A ⊕ s.B
	TaskTD             // consequence t ⪯_A s / t ≺_A s
	TaskMI             // consequence fills a value: val(x.ρ), M_d, or t.A = c on nullable cells
)

// String names the task.
func (t Task) String() string {
	switch t {
	case TaskER:
		return "ER"
	case TaskCR:
		return "CR"
	case TaskTD:
		return "TD"
	case TaskMI:
		return "MI"
	}
	return "?"
}

// TaskOf classifies the rule. Logic imputation rules (X → t.A = c with a
// null(t.A) precondition) classify as MI; other constant consequences are
// CR (paper §4.2's designated rule types).
func (r *Rule) TaskOf() Task {
	switch r.P0.Kind {
	case predicate.KEID:
		return TaskER
	case predicate.KTemporal, predicate.KRank:
		return TaskTD
	case predicate.KVal, predicate.KPredict:
		return TaskMI
	case predicate.KConst, predicate.KAttr:
		for _, p := range r.X {
			if p.Kind == predicate.KNull && p.T == r.P0.T && p.A == r.P0.A {
				return TaskMI
			}
		}
		return TaskCR
	default:
		return TaskCR
	}
}

// String renders the rule in DSL syntax (parseable by Parse).
func (r *Rule) String() string {
	var parts []string
	for _, a := range r.Atoms {
		parts = append(parts, a.String())
	}
	for _, a := range r.VertexAtoms {
		parts = append(parts, a.String())
	}
	for _, p := range r.X {
		parts = append(parts, p.String())
	}
	return strings.Join(parts, " ^ ") + " -> " + r.P0.String()
}

// Clone deep-copies the rule (predicates are copied by value).
func (r *Rule) Clone() *Rule {
	c := *r
	c.Atoms = append([]Atom(nil), r.Atoms...)
	c.VertexAtoms = append([]VertexAtom(nil), r.VertexAtoms...)
	c.X = make([]*predicate.Predicate, len(r.X))
	for i, p := range r.X {
		cp := *p
		c.X[i] = &cp
	}
	p0 := *r.P0
	c.P0 = &p0
	return &c
}
