package ree

import (
	"testing"

	"github.com/rockclean/rock/internal/data"
	"github.com/rockclean/rock/internal/ml"
	"github.com/rockclean/rock/internal/predicate"
)

// transDB builds a tiny Transaction relation mirroring the paper's Table 3.
func transDB(t *testing.T) (*predicate.Env, *data.Relation) {
	t.Helper()
	schema := mustSchema("Trans",
		data.Attribute{Name: "sid", Type: data.TString},
		data.Attribute{Name: "com", Type: data.TString},
		data.Attribute{Name: "mfg", Type: data.TString},
		data.Attribute{Name: "price", Type: data.TFloat},
	)
	rel := data.NewRelation(schema)
	db := data.NewDatabase()
	db.Add(rel)
	env := predicate.NewEnv(db)
	env.Models.Register(ml.NewSimilarityMatcher("M_ER", 0.8))
	return env, rel
}

func TestViolationsCR(t *testing.T) {
	env, rel := transDB(t)
	rel.Insert("p3", data.S("s3"), data.S("Mate X2"), data.S("Huawei"), data.F(5200))
	rel.Insert("p4", data.S("s4"), data.S("Mate X2"), data.S("Apple"), data.F(5200)) // wrong mfg
	rel.Insert("p5", data.S("s5"), data.S("IPhone 13"), data.S("Apple"), data.F(9000))

	r := MustParse("Trans(t) ^ Trans(s) ^ t.com = s.com -> t.mfg = s.mfg", env.DB)
	r.ID = "phi2"
	vs, err := r.Violations(env, 0)
	if err != nil {
		t.Fatal(err)
	}
	// The (t1,t2) and (t2,t1) valuations both violate.
	if len(vs) != 2 {
		t.Fatalf("violations=%d want 2: %v", len(vs), vs)
	}
	sat, err := r.Satisfied(env)
	if err != nil || sat {
		t.Error("rule must be unsatisfied")
	}
	// Limit works.
	vs, _ = r.Violations(env, 1)
	if len(vs) != 1 {
		t.Error("limit ignored")
	}
}

func TestSatisfiedWhenClean(t *testing.T) {
	env, rel := transDB(t)
	rel.Insert("p3", data.S("s3"), data.S("Mate X2"), data.S("Huawei"), data.F(5200))
	rel.Insert("p4", data.S("s4"), data.S("Mate X2"), data.S("Huawei"), data.F(5100))
	r := MustParse("Trans(t) ^ Trans(s) ^ t.com = s.com -> t.mfg = s.mfg", env.DB)
	sat, err := r.Satisfied(env)
	if err != nil || !sat {
		t.Errorf("clean data must satisfy: %v %v", sat, err)
	}
}

func TestMeasureSupportConfidence(t *testing.T) {
	env, rel := transDB(t)
	// Three tuples with com=X: two Huawei, one Apple.
	rel.Insert("a", data.S("s1"), data.S("X"), data.S("Huawei"), data.F(1))
	rel.Insert("b", data.S("s2"), data.S("X"), data.S("Huawei"), data.F(2))
	rel.Insert("c", data.S("s3"), data.S("X"), data.S("Apple"), data.F(3))
	r := MustParse("Trans(t) ^ Trans(s) ^ t.com = s.com -> t.mfg = s.mfg", env.DB)
	supp, conf, err := r.Measure(env)
	if err != nil {
		t.Fatal(err)
	}
	// 6 ordered pairs all satisfy X; only (a,b),(b,a) satisfy p0 => conf=1/3.
	if conf < 0.32 || conf > 0.34 {
		t.Errorf("confidence=%f want 1/3", conf)
	}
	if supp <= 0 || supp > 1 {
		t.Errorf("support out of range: %f", supp)
	}
}

func TestSelfPairSkipped(t *testing.T) {
	env, rel := transDB(t)
	rel.Insert("a", data.S("s1"), data.S("X"), data.S("Huawei"), data.F(1))
	// With one tuple, a two-variable rule has no valuations at all.
	r := MustParse("Trans(t) ^ Trans(s) ^ t.com = s.com -> t.mfg = s.mfg", env.DB)
	supp, conf, err := r.Measure(env)
	if err != nil {
		t.Fatal(err)
	}
	if supp != 0 || conf != 0 {
		t.Errorf("self pair must be skipped: supp=%f conf=%f", supp, conf)
	}
}

func TestViolationsMissingRelation(t *testing.T) {
	env, _ := transDB(t)
	r := MustParse("Ghost(t) -> t.a = 1", nil)
	if _, err := r.Violations(env, 0); err == nil {
		t.Error("missing relation must error")
	}
}

func TestViolationString(t *testing.T) {
	env, rel := transDB(t)
	rel.Insert("p3", data.S("s3"), data.S("M"), data.S("Huawei"), data.F(1))
	rel.Insert("p4", data.S("s4"), data.S("M"), data.S("Apple"), data.F(1))
	r := MustParse("Trans(t) ^ Trans(s) ^ t.com = s.com -> t.mfg = s.mfg", env.DB)
	r.ID = "phi2"
	vs, _ := r.Violations(env, 1)
	if len(vs) == 0 {
		t.Fatal("expected violation")
	}
	if s := vs[0].String(); s == "" || s[:12] != "violation of" {
		t.Errorf("violation string: %q", s)
	}
}
