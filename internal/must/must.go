// Package must holds the panic-on-error constructors for hand-written
// literals: schemas, values, rules and graph edges that appear inline in
// tests, examples and workload generators, where a malformed literal is a
// programming error rather than a runtime condition. The library packages
// themselves (data, ree, kg) return errors; this is the only place in the
// tree where a construction failure is allowed to panic.
package must

import (
	"github.com/rockclean/rock/internal/data"
	"github.com/rockclean/rock/internal/kg"
	"github.com/rockclean/rock/internal/ree"
)

// Schema is data.NewSchema that panics on error.
func Schema(name string, attrs ...data.Attribute) *data.Schema {
	s, err := data.NewSchema(name, attrs...)
	if err != nil {
		panic(err)
	}
	return s
}

// Value is data.Parse that panics on error.
func Value(t data.Type, text string) data.Value {
	v, err := data.Parse(t, text)
	if err != nil {
		panic(err)
	}
	return v
}

// Rule is ree.Parse that panics on error.
func Rule(text string, db *data.Database) *ree.Rule {
	r, err := ree.Parse(text, db)
	if err != nil {
		panic(err)
	}
	return r
}

// Edge is g.AddEdge that panics on error.
func Edge(g *kg.Graph, from kg.VertexID, label string, to kg.VertexID) {
	if err := g.AddEdge(from, label, to); err != nil {
		panic(err)
	}
}
