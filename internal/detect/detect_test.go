package detect

import (
	"fmt"
	"testing"

	"github.com/rockclean/rock/internal/data"
	"github.com/rockclean/rock/internal/must"
	"github.com/rockclean/rock/internal/predicate"
	"github.com/rockclean/rock/internal/ree"
)

// dirtyTransEnv builds a Trans relation with known injected errors: every
// 10th tuple has the wrong manufactory for its commodity.
func dirtyTransEnv(t *testing.T, n int) (*predicate.Env, *data.Relation, map[string]bool) {
	t.Helper()
	schema := must.Schema("Trans",
		data.Attribute{Name: "com", Type: data.TString},
		data.Attribute{Name: "mfg", Type: data.TString},
	)
	rel := data.NewRelation(schema)
	gold := map[string]bool{}
	for i := 0; i < n; i++ {
		com := fmt.Sprintf("line %d", i%8)
		mfg := fmt.Sprintf("maker %d", i%8)
		if i%10 == 3 {
			mfg = "WRONG"
		}
		tp := rel.Insert(fmt.Sprintf("e%d", i), data.S(com), data.S(mfg))
		if i%10 == 3 {
			gold[data.CellRef{Rel: "Trans", TID: tp.TID, Attr: "mfg"}.String()] = true
		}
	}
	db := data.NewDatabase()
	db.Add(rel)
	return predicate.NewEnv(db), rel, gold
}

func crRule(t *testing.T, env *predicate.Env) *ree.Rule {
	t.Helper()
	r := must.Rule("Trans(t) ^ Trans(s) ^ t.com = s.com -> t.mfg = s.mfg", env.DB)
	r.ID = "phi2"
	return r
}

func TestDetectFindsInjectedErrors(t *testing.T) {
	env, _, gold := dirtyTransEnv(t, 100)
	d := New(env, []*ree.Rule{crRule(t, env)}, DefaultOptions())
	errs, err := d.Detect()
	if err != nil {
		t.Fatal(err)
	}
	if len(errs) == 0 {
		t.Fatal("no errors detected")
	}
	// Every gold cell must be implicated by some detection.
	found := map[string]bool{}
	for _, e := range errs {
		for _, c := range e.Cells {
			found[c.String()] = true
		}
	}
	for g := range gold {
		if !found[g] {
			t.Errorf("missed injected error %s", g)
		}
	}
}

func TestDetectDeterministicAcrossWorkerCounts(t *testing.T) {
	keysFor := func(workers int) []string {
		env, _, _ := dirtyTransEnv(t, 80)
		o := DefaultOptions()
		o.Workers = workers
		d := New(env, []*ree.Rule{crRule(t, env)}, o)
		errs, err := d.Detect()
		if err != nil {
			t.Fatal(err)
		}
		out := make([]string, len(errs))
		for i, e := range errs {
			out[i] = e.Key()
		}
		return out
	}
	a := keysFor(1)
	b := keysFor(4)
	c := keysFor(9)
	if len(a) != len(b) || len(b) != len(c) {
		t.Fatalf("worker count changed result size: %d %d %d", len(a), len(b), len(c))
	}
	for i := range a {
		if a[i] != b[i] || b[i] != c[i] {
			t.Fatalf("results differ at %d", i)
		}
	}
}

func TestDetectIncrementalOnlyTouchesDirty(t *testing.T) {
	env, rel, _ := dirtyTransEnv(t, 60)
	d := New(env, []*ree.Rule{crRule(t, env)}, DefaultOptions())
	full, err := d.Detect()
	if err != nil {
		t.Fatal(err)
	}
	// Insert one fresh erroneous tuple and detect incrementally.
	nt := rel.Insert("eNew", data.S("line 0"), data.S("ALSO WRONG"))
	dirty := map[string]map[int]bool{"Trans": {nt.TID: true}}
	inc, err := d.DetectIncremental(dirty)
	if err != nil {
		t.Fatal(err)
	}
	if len(inc) == 0 {
		t.Fatal("incremental detection missed the new error")
	}
	if len(inc) >= len(full) {
		t.Errorf("incremental (%d) should be far smaller than batch (%d)", len(inc), len(full))
	}
	// Every incremental error involves the dirty tuple.
	for _, e := range inc {
		touches := false
		for _, c := range e.Cells {
			if c.TID == nt.TID {
				touches = true
			}
		}
		if !touches {
			t.Errorf("incremental error does not touch dirty tuple: %+v", e)
		}
	}
}

func TestDetectERRule(t *testing.T) {
	schema := must.Schema("Person",
		data.Attribute{Name: "LN", Type: data.TString},
		data.Attribute{Name: "home", Type: data.TString},
	)
	rel := data.NewRelation(schema)
	rel.Insert("p1", data.S("Smith"), data.S("12 Beijing Road"))
	rel.Insert("p2", data.S("Smith"), data.S("12 Beijing Road"))
	rel.Insert("p3", data.S("Jones"), data.S("elsewhere"))
	db := data.NewDatabase()
	db.Add(rel)
	env := predicate.NewEnv(db)
	r := must.Rule("Person(t) ^ Person(s) ^ t.LN = s.LN ^ t.home = s.home -> t.eid = s.eid", db)
	r.ID = "er"
	d := New(env, []*ree.Rule{r}, DefaultOptions())
	errs, err := d.Detect()
	if err != nil {
		t.Fatal(err)
	}
	if len(errs) != 1 {
		t.Fatalf("want exactly the (p1,p2) duplicate, got %d: %+v", len(errs), errs)
	}
	if errs[0].DupEIDs != [2]string{"p1", "p2"} {
		t.Errorf("dup pair=%v", errs[0].DupEIDs)
	}
	if errs[0].Task != ree.TaskER {
		t.Error("task must be ER")
	}
}

func TestErrorKeyDedup(t *testing.T) {
	a := &Error{RuleID: "r1", Task: ree.TaskCR, Cells: []data.CellRef{{Rel: "R", TID: 1, Attr: "x"}, {Rel: "R", TID: 2, Attr: "x"}}}
	b := &Error{RuleID: "r2", Task: ree.TaskCR, Cells: []data.CellRef{{Rel: "R", TID: 2, Attr: "x"}, {Rel: "R", TID: 1, Attr: "x"}}}
	if a.Key() != b.Key() {
		t.Error("cell order and rule id must not affect the key")
	}
	e1 := &Error{Task: ree.TaskER, DupEIDs: [2]string{"a", "b"}}
	e2 := &Error{Task: ree.TaskER, DupEIDs: [2]string{"a", "c"}}
	if e1.Key() == e2.Key() {
		t.Error("different pairs must differ")
	}
}

func TestDetectInvalidRule(t *testing.T) {
	env, _, _ := dirtyTransEnv(t, 10)
	bad := must.Rule("Ghost(t) -> t.a = 1", nil)
	d := New(env, []*ree.Rule{bad}, DefaultOptions())
	if _, err := d.Detect(); err == nil {
		t.Error("invalid rule must surface an error")
	}
}

func TestDetectSimulatedMatchesBatch(t *testing.T) {
	env, _, _ := dirtyTransEnv(t, 60)
	o := DefaultOptions()
	o.Workers = 8
	d := New(env, []*ree.Rule{crRule(t, env)}, o)
	batch, err := d.Detect()
	if err != nil {
		t.Fatal(err)
	}
	sim, makespan, err := d.DetectSimulated()
	if err != nil {
		t.Fatal(err)
	}
	if makespan <= 0 {
		t.Error("simulated makespan must be positive")
	}
	if len(sim) != len(batch) {
		t.Fatalf("simulated run found %d errors, batch %d", len(sim), len(batch))
	}
	for i := range sim {
		if sim[i].Key() != batch[i].Key() {
			t.Fatalf("result %d differs between modes", i)
		}
	}
	// More workers shrink (or hold) the simulated makespan.
	o2 := DefaultOptions()
	o2.Workers = 1
	d1 := New(env, []*ree.Rule{crRule(t, env)}, o2)
	_, m1, err := d1.DetectSimulated()
	if err != nil {
		t.Fatal(err)
	}
	// Timing noise allowed, but 8 workers should not cost 3x one worker.
	if makespan > 3*m1 {
		t.Errorf("8-worker makespan %v vs 1-worker %v", makespan, m1)
	}
}

func TestAttributeCulpritsNoFreq(t *testing.T) {
	// The no-tie-break variant still covers every violation.
	errs := []*Error{
		{RuleID: "r", Task: ree.TaskCR, Cells: []data.CellRef{{Rel: "R", TID: 1, Attr: "a"}, {Rel: "R", TID: 2, Attr: "a"}}},
		{RuleID: "r", Task: ree.TaskCR, Cells: []data.CellRef{{Rel: "R", TID: 1, Attr: "a"}, {Rel: "R", TID: 3, Attr: "a"}}},
		{RuleID: "r", Task: ree.TaskER, DupEIDs: [2]string{"x", "y"}},
	}
	out := AttributeCulprits(errs)
	// TID 1 covers both edges: one culprit + the ER error pass through.
	if len(out) != 2 {
		t.Fatalf("out=%d: %+v", len(out), out)
	}
	foundCell, foundDup := false, false
	for _, e := range out {
		if e.Task == ree.TaskER {
			foundDup = true
		}
		if len(e.Cells) == 1 && e.Cells[0].TID == 1 {
			foundCell = true
		}
	}
	if !foundCell || !foundDup {
		t.Errorf("culprits wrong: %+v", out)
	}
}

func TestDetectSingleVariableRule(t *testing.T) {
	env, rel, _ := dirtyTransEnv(t, 30)
	rel.Insert("odd", data.S("line 0"), data.Null(data.TString))
	r := must.Rule("Trans(t) ^ !null(t.com) -> t.mfg = 'maker 0'", env.DB)
	r.ID = "single"
	d := New(env, []*ree.Rule{r}, DefaultOptions())
	errs, err := d.Detect()
	if err != nil {
		t.Fatal(err)
	}
	if len(errs) == 0 {
		t.Error("single-variable rule must detect")
	}
	for _, e := range errs {
		if len(e.Cells) != 1 {
			t.Errorf("single-var violations implicate one cell: %+v", e)
		}
	}
}
