// Package detect implements Rock's error-detection module (paper §3 and
// §5.3): given a set Σ of REE++s and a dataset D, it catches the errors in
// D as violations of the rules. For data-partitioned parallelism it
// extends the HyperCube partitioning of [41]: the data is divided into
// virtual blocks and each rule gets one work unit per block combination,
// distributed over the simulated cluster with consistent hashing and work
// stealing. A batch mode scans all of D; an incremental mode restricts to
// valuations touching changed tuples (ΔD).
package detect

import (
	"context"
	"fmt"
	"sort"
	"sync"
	"time"

	"github.com/rockclean/rock/internal/cluster"
	"github.com/rockclean/rock/internal/crystal"
	"github.com/rockclean/rock/internal/data"
	"github.com/rockclean/rock/internal/exec"
	"github.com/rockclean/rock/internal/ml"
	"github.com/rockclean/rock/internal/obs"
	"github.com/rockclean/rock/internal/predicate"
	"github.com/rockclean/rock/internal/ree"
)

// Error is one detected error: a rule violation with the cells (or the
// duplicate pair) it implicates.
type Error struct {
	RuleID string
	Task   ree.Task
	// Cells are the attribute cells the violation implicates (CR/TD/MI).
	Cells []data.CellRef
	// DupEIDs is the unidentified duplicate pair (ER), lexicographically
	// ordered.
	DupEIDs [2]string
}

// Key returns a deduplication key covering the implicated evidence (not
// the rule), so the same underlying error found by two rules counts once.
func (e *Error) Key() string {
	if e.Task == ree.TaskER {
		return "dup:" + e.DupEIDs[0] + "|" + e.DupEIDs[1]
	}
	s := "cell:"
	ks := make([]string, len(e.Cells))
	for i, c := range e.Cells {
		ks[i] = c.String()
	}
	sort.Strings(ks)
	for _, k := range ks {
		s += k + ";"
	}
	return s
}

// Options tunes a detection run.
type Options struct {
	// Workers is the simulated cluster size n (paper Figure 4(h)).
	Workers int
	// Blocks is the HyperCube block count per dimension; 0 picks
	// max(Workers, 4).
	Blocks int
	// UseBlocking enables LSH blocking for ML predicates.
	UseBlocking bool
	// Steal enables work stealing between workers.
	Steal bool
	// Pred, when set, is a predication layer shared with later pipeline
	// phases: detection's ML calls fill its content-keyed prediction
	// cache, so the chase serves the same (model, pair) scores as hits
	// instead of recomputing them (paper §5.4, "ML predication is
	// precomputed"). The layer's embedding store is NOT used here —
	// embeddings are keyed by tuple identity and detection reads raw
	// values while the chase reads through accumulated fixes.
	Pred *ml.Predication
	// Obs receives the detection phase's metrics and events under the
	// "detect.*" prefix (units, wall clock, per-node counts, steals,
	// blocker cache hits). Nil records nothing.
	Obs *obs.Registry
	// MaxRetries / RetryBackoff bound the retry-with-reassignment policy
	// for panicking work units (see cluster.Options).
	MaxRetries   int
	RetryBackoff time.Duration
	// Faults, when non-nil, injects failures into the detection drain
	// (tests and the fault experiments only).
	Faults *cluster.FaultInjector
	// Span, when non-nil, parents the detection phase span (rock threads
	// its root "clean" span here). Observed only while the registry has
	// spans enabled; tracing never changes detection results.
	Span *obs.Span
}

// DefaultOptions is Rock's shipped configuration.
func DefaultOptions() Options {
	return Options{Workers: 4, UseBlocking: true, Steal: true}
}

// Detector detects violations of a rule set over a database.
type Detector struct {
	env   *predicate.Env
	rules []*ree.Rule
	opts  Options
	// ex is shared by every work unit of every rule (exec.Executor is safe
	// for concurrent use), so LSH blocker indexes built for one rule's
	// partition are reused by every other rule blocking on the same
	// (relation, attrs, partition).
	ex *exec.Executor
}

// New creates a detector.
func New(env *predicate.Env, rules []*ree.Rule, opts Options) *Detector {
	if opts.Workers < 1 {
		opts.Workers = 1
	}
	if opts.Blocks <= 0 {
		opts.Blocks = opts.Workers
		if opts.Blocks < 4 {
			opts.Blocks = 4
		}
	}
	d := &Detector{env: env, rules: rules, opts: opts, ex: exec.New(env)}
	d.ex.SetObs(opts.Obs)
	// Detection reads raw values (no ValueOf hook) and a Detector is
	// created per call over an immutable snapshot, so a per-detector
	// embedding store needs no invalidation: cross-relation ML probes and
	// cross-rule blocker rebuilds embed each tuple once instead of once
	// per rule per unit.
	d.ex.SetEmbedStore(ml.NewEmbedStore(0))
	if opts.Pred != nil {
		// Route registry models through the shared prediction cache so
		// scores computed during detection carry over to the chase.
		for _, name := range env.Models.Names() {
			if m, err := env.Models.Get(name); err == nil {
				env.Models.Register(opts.Pred.Wrap(ml.Unwrap(m)))
			}
		}
	}
	return d
}

// Detect runs batch detection over the whole database and returns the
// deduplicated errors.
func (d *Detector) Detect() ([]*Error, error) {
	errs, _, err := d.DetectCtx(context.Background())
	return errs, err
}

// DetectCtx is Detect under a cancellation context. On cancel/deadline it
// degrades gracefully: the errors found so far are returned with
// partial=true and a nil error.
func (d *Detector) DetectCtx(ctx context.Context) (errs []*Error, partial bool, err error) {
	return d.runCtx(ctx, nil)
}

// DetectIncremental runs incremental detection: only violations involving
// at least one dirty tuple are found (paper §3, "incrementally detects
// errors in response to updates"). dirty maps relation name to changed
// TIDs.
func (d *Detector) DetectIncremental(dirty map[string]map[int]bool) ([]*Error, error) {
	errs, _, err := d.runCtx(context.Background(), dirty)
	return errs, err
}

// DetectIncrementalCtx is DetectIncremental under a cancellation context,
// with the same graceful degradation as DetectCtx.
func (d *Detector) DetectIncrementalCtx(ctx context.Context, dirty map[string]map[int]bool) ([]*Error, bool, error) {
	return d.runCtx(ctx, dirty)
}

func (d *Detector) runCtx(ctx context.Context, dirty map[string]map[int]bool) ([]*Error, bool, error) {
	errs, _, partial, err := d.runMode(ctx, dirty, false)
	return errs, partial, err
}

// DetectSimulated runs batch detection measuring each work unit's cost
// serially, then returns the detected errors together with the simulated
// parallel makespan over the configured worker count (see
// cluster.SimulateMakespan — the substitution used on hosts without
// enough physical cores to express the paper's cluster sizes).
func (d *Detector) DetectSimulated() ([]*Error, time.Duration, error) {
	errs, makespan, _, err := d.runMode(context.Background(), nil, true)
	return errs, makespan, err
}

func (d *Detector) runMode(ctx context.Context, dirty map[string]map[int]bool, simulate bool) ([]*Error, time.Duration, bool, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	if dirty != nil {
		// Incremental detection runs after the caller mutated raw data:
		// re-intern the changed TIDs so the executor's id comparisons see
		// current values (fresh detectors build columns lazily anyway; this
		// matters for a detector reused across update batches).
		d.ex.RefreshTuples(dirty)
	}
	start := time.Now()
	cl := cluster.New(d.opts.Workers)
	cl.SetObs(d.opts.Obs, "detect")
	phaseName := "detect"
	if dirty != nil {
		phaseName = "detect.incremental"
	}
	phase := d.opts.Obs.StartSpan(phaseName, d.opts.Span)
	defer phase.End()
	var mu sync.Mutex
	seen := make(map[string]bool)
	var out []*Error
	var firstErr error

	blocks := d.partition()
	var all []*crystal.WorkUnit
	for _, r := range d.rules {
		units, err := d.unitsFor(r, blocks, dirty, phase, func(errs []*Error) {
			mu.Lock()
			defer mu.Unlock()
			for _, e := range errs {
				if !seen[e.Key()] {
					seen[e.Key()] = true
					out = append(out, e)
				}
			}
		}, &mu, &firstErr)
		if err != nil {
			return nil, 0, false, err
		}
		all = append(all, units...)
	}
	d.opts.Obs.Add("detect.units", uint64(len(all)))
	var makespan time.Duration
	partial := false
	if simulate {
		hist := d.opts.Obs.Histogram("detect.unit")
		sims := make([]cluster.SimUnit, 0, len(all))
		for _, u := range all {
			if ctx.Err() != nil {
				partial = true
				d.opts.Obs.Inc("detect.cancelled")
				break
			}
			node := cl.Ring.Owner(u.Part)
			unitStart := time.Now()
			u.Exec(node)
			cost := time.Since(unitStart)
			sims = append(sims, cluster.SimUnit{Node: node, Cost: cost})
			hist.Observe(cost)
			d.opts.Obs.Inc("detect.node." + node + ".units")
		}
		makespan = cluster.SimulateMakespan(sims, cl.Nodes(), d.opts.Steal)
		d.opts.Obs.Add("detect.sim_makespan_ns", uint64(makespan))
	} else {
		for _, u := range all {
			cl.Submit(u)
		}
		st := cl.DrainWithStats(ctx, cluster.Options{
			Steal:        d.opts.Steal,
			MaxRetries:   d.opts.MaxRetries,
			RetryBackoff: d.opts.RetryBackoff,
			Faults:       d.opts.Faults,
		})
		// A cancelled drain (or permanently failed units) leaves detection
		// incomplete but sound: every error found so far stands.
		partial = st.Cancelled || len(st.Failed) > 0
	}
	if firstErr != nil {
		d.opts.Obs.Inc("detect.errors.run")
		return nil, 0, partial, firstErr
	}
	out = AttributeCulpritsFreq(out, d.culpritScore())
	sort.Slice(out, func(i, j int) bool { return out[i].Key() < out[j].Key() })
	phase.SetN(int64(len(out)))
	d.opts.Obs.Add("detect.errors.found", uint64(len(out)))
	d.opts.Obs.Add("detect.wall_ns", uint64(time.Since(start)))
	if d.opts.Pred != nil {
		d.opts.Pred.PublishTo(d.opts.Obs)
	}
	return out, makespan, partial, nil
}

// culpritScore returns the tie-break signal for culprit attribution: the
// cell's column value frequency plus a character-bigram plausibility term
// in [0, 1). Typos and corrupted numbers are rare in their columns and
// contain bigrams the column has never seen elsewhere, so lower scores
// mark the likelier culprit.
func (d *Detector) culpritScore() func(data.CellRef) float64 {
	return CulpritScoreFn(d.env.DB)
}

// CulpritScoreFn builds the culprit tie-break score over one database
// (shared with the SQL-engine baselines, which run the same rules).
func CulpritScoreFn(db *data.Database) func(data.CellRef) float64 {
	type colKey struct{ rel, attr string }
	type colStats struct {
		freq    map[string]int
		bigrams map[string]int
		total   int
	}
	cache := map[colKey]*colStats{}
	stats := func(c data.CellRef) *colStats {
		k := colKey{c.Rel, c.Attr}
		st := cache[k]
		if st != nil {
			return st
		}
		rel := db.Rel(c.Rel)
		if rel == nil {
			return &colStats{}
		}
		ai := rel.Schema.Index(c.Attr)
		if ai < 0 {
			return &colStats{}
		}
		st = &colStats{freq: map[string]int{}, bigrams: map[string]int{}}
		for _, t := range rel.Tuples {
			v := t.Values[ai]
			st.freq[v.Key()]++
			s := v.String()
			for i := 0; i+2 <= len(s); i++ {
				st.bigrams[s[i:i+2]]++
				st.total++
			}
		}
		cache[k] = st
		return st
	}
	return func(c data.CellRef) float64 {
		rel := db.Rel(c.Rel)
		if rel == nil {
			return 0
		}
		v, ok := rel.Value(c.TID, c.Attr)
		if !ok {
			return 0
		}
		if v.IsNull() {
			// A null participating in a violation is the error by
			// definition (the MI case): absolute culprit priority.
			return -1
		}
		st := stats(c)
		score := float64(st.freq[v.Key()])
		// Bigram plausibility in [0, 1): the mean relative frequency of the
		// value's bigrams within its column.
		s := v.String()
		if st.total > 0 && len(s) >= 2 {
			sum, n := 0.0, 0.0
			max := 0
			for _, cnt := range st.bigrams {
				if cnt > max {
					max = cnt
				}
			}
			for i := 0; i+2 <= len(s); i++ {
				sum += float64(st.bigrams[s[i:i+2]]) / float64(max)
				n++
			}
			if n > 0 {
				score += 0.99 * (sum / n)
			}
		}
		return score
	}
}

// AttributeCulprits refines two-cell violations into single-cell errors by
// greedy vertex cover over the violation graph (see AttributeCulpritsFreq,
// which it calls without a frequency tie-break).
func AttributeCulprits(errs []*Error) []*Error {
	return AttributeCulpritsFreq(errs, nil)
}

// AttributeCulpritsFreq refines two-cell violations into single-cell errors
// by greedy vertex cover over the violation graph: a truly erroneous cell
// conflicts with every clean witness in its group, so it covers many
// violations, while each clean cell conflicts only with the few erroneous
// ones. Repeatedly flagging the highest-degree cell until all two-cell
// violations are covered pins the blame precisely (the standard
// hypergraph-cover heuristic for dependency violations). Degree ties —
// e.g. a group with exactly one clean and one dirty member — are broken by
// value rarity when freq is supplied: the cell whose value is rarer in its
// column is the culprit. One-cell and ER errors pass through unchanged.
func AttributeCulpritsFreq(errs []*Error, freq func(data.CellRef) float64) []*Error {
	var out []*Error
	type edge struct{ a, b string }
	var edges []edge
	meta := map[string]data.CellRef{}
	byCellErr := map[string]*Error{}
	for _, e := range errs {
		if e.Task != ree.TaskER && len(e.Cells) == 2 {
			a, b := e.Cells[0], e.Cells[1]
			edges = append(edges, edge{a.String(), b.String()})
			meta[a.String()] = a
			meta[b.String()] = b
			if byCellErr[a.String()] == nil {
				byCellErr[a.String()] = e
			}
			if byCellErr[b.String()] == nil {
				byCellErr[b.String()] = e
			}
			continue
		}
		out = append(out, e)
	}
	covered := make([]bool, len(edges))
	remaining := len(edges)
	// Pre-pass: null cells (score < 0) are culprits outright.
	if freq != nil {
		flagged := map[string]bool{}
		for i, ed := range edges {
			if covered[i] {
				continue
			}
			for _, cellKey := range []string{ed.a, ed.b} {
				if !flagged[cellKey] && freq(meta[cellKey]) < 0 {
					flagged[cellKey] = true
				}
			}
		}
		for cellKey := range flagged {
			for i, ed := range edges {
				if !covered[i] && (ed.a == cellKey || ed.b == cellKey) {
					covered[i] = true
					remaining--
				}
			}
			src := byCellErr[cellKey]
			out = append(out, &Error{RuleID: src.RuleID, Task: src.Task, Cells: []data.CellRef{meta[cellKey]}})
		}
	}
	for remaining > 0 {
		// Pick the cell covering the most uncovered edges; ties prefer the
		// rarer value, then the key, for determinism.
		best, bestDeg := "", 0
		bestFreq := 0.0
		deg := map[string]int{}
		for i, ed := range edges {
			if covered[i] {
				continue
			}
			deg[ed.a]++
			deg[ed.b]++
		}
		keys := make([]string, 0, len(deg))
		for k := range deg {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		for _, k := range keys {
			f := 0.0
			if freq != nil {
				f = freq(meta[k])
			}
			if deg[k] > bestDeg || (deg[k] == bestDeg && freq != nil && f < bestFreq) {
				best, bestDeg, bestFreq = k, deg[k], f
			}
		}
		if best == "" {
			break
		}
		for i, ed := range edges {
			if !covered[i] && (ed.a == best || ed.b == best) {
				covered[i] = true
				remaining--
			}
		}
		src := byCellErr[best]
		out = append(out, &Error{RuleID: src.RuleID, Task: src.Task, Cells: []data.CellRef{meta[best]}})
	}
	return out
}

// partition divides each relation into virtual blocks by TID hash.
func (d *Detector) partition() map[string][][]*data.Tuple {
	blocks := make(map[string][][]*data.Tuple)
	for name, rel := range d.env.DB.Relations {
		bs := make([][]*data.Tuple, d.opts.Blocks)
		for _, t := range rel.Tuples {
			i := t.TID % d.opts.Blocks
			bs[i] = append(bs[i], t)
		}
		blocks[name] = bs
	}
	return blocks
}

// unitsFor builds the HyperCube work units of rule r: one per block
// combination of its first two tuple variables (or per block for
// single-variable rules). Each unit runs the local executor on its
// partition and reports implicated errors through sink.
func (d *Detector) unitsFor(r *ree.Rule, blocks map[string][][]*data.Tuple,
	dirty map[string]map[int]bool, phase *obs.Span, sink func([]*Error), mu *sync.Mutex, firstErr *error) ([]*crystal.WorkUnit, error) {

	if err := r.Validate(d.env.DB); err != nil {
		return nil, err
	}
	reg := d.opts.Obs
	mkRun := func(part string, restrictVar map[string][]*data.Tuple, estRows int) func(node string) {
		return func(node string) {
			var unitSpan *obs.Span
			if reg.SpansEnabled() {
				unitSpan = reg.StartSpan("unit", phase)
				unitSpan.SetRule(r.ID)
				unitSpan.SetNode(node)
				unitSpan.SetDetail(part)
				defer unitSpan.End()
			}
			unitStart := time.Now()
			var local []*Error
			st, err := d.ex.Run(r, exec.Options{
				UseBlocking: d.opts.UseBlocking,
				Dirty:       dirty,
				RestrictVar: restrictVar,
				Span:        unitSpan,
			}, func(h *predicate.Valuation) bool {
				ok, evalErr := r.P0.Eval(d.env, h)
				if evalErr != nil {
					mu.Lock()
					if *firstErr == nil {
						*firstErr = evalErr
					}
					mu.Unlock()
					return false
				}
				if !ok {
					local = append(local, implicate(r, h))
				}
				return true
			})
			unitSpan.SetN(int64(st.Valuations))
			reg.Inc("detect.rule." + r.ID + ".units")
			reg.Add("detect.rule."+r.ID+".wall_ns", uint64(time.Since(unitStart)))
			if err != nil {
				reg.Inc("detect.rule." + r.ID + ".errors")
				mu.Lock()
				if *firstErr == nil {
					*firstErr = err
				}
				mu.Unlock()
				return
			}
			if len(local) > 0 {
				sink(local)
			}
		}
	}

	var units []*crystal.WorkUnit
	uid := 0
	switch len(r.Atoms) {
	case 0:
		return nil, fmt.Errorf("detect: rule %s has no tuple atoms", r.ID)
	case 1:
		a := r.Atoms[0]
		for i, blk := range blocks[a.Rel] {
			if len(blk) == 0 {
				continue
			}
			part := fmt.Sprintf("%s/b%d", a.Rel, i)
			units = append(units, &crystal.WorkUnit{
				ID:      uid,
				RuleID:  r.ID,
				Part:    part,
				EstCost: float64(len(blk)),
				RunOn:   mkRun(part, map[string][]*data.Tuple{a.Var: blk}, len(blk)),
			})
			uid++
		}
	default:
		a1, a2 := r.Atoms[0], r.Atoms[1]
		for i, b1 := range blocks[a1.Rel] {
			if len(b1) == 0 {
				continue
			}
			for j, b2 := range blocks[a2.Rel] {
				if len(b2) == 0 {
					continue
				}
				part := fmt.Sprintf("%s-%s/b%d-%d", a1.Rel, a2.Rel, i, j)
				units = append(units, &crystal.WorkUnit{
					ID:      uid,
					RuleID:  r.ID,
					Part:    part,
					EstCost: float64(len(b1) * len(b2)),
					RunOn: mkRun(part, map[string][]*data.Tuple{
						a1.Var: b1,
						a2.Var: b2,
					}, len(b1)*len(b2)),
				})
				uid++
			}
		}
	}
	return units, nil
}

// implicate derives the error evidence from a violation of r under h
// (which cells are wrong, or which pair is an uncaught duplicate).
func implicate(r *ree.Rule, h *predicate.Valuation) *Error {
	p := r.P0
	e := &Error{RuleID: r.ID, Task: r.TaskOf()}
	cell := func(varName, attr string) {
		b, ok := h.Tuples[varName]
		if !ok {
			return
		}
		e.Cells = append(e.Cells, data.CellRef{Rel: b.Rel, TID: b.Tuple.TID, Attr: attr})
	}
	switch p.Kind {
	case predicate.KEID:
		bt, bs := h.Tuples[p.T], h.Tuples[p.S]
		a, b := bt.Tuple.EID, bs.Tuple.EID
		if a > b {
			a, b = b, a
		}
		e.DupEIDs = [2]string{a, b}
	case predicate.KConst:
		cell(p.T, p.A)
	case predicate.KAttr:
		cell(p.T, p.A)
		cell(p.S, p.B)
	case predicate.KTemporal, predicate.KRank:
		cell(p.T, p.A)
		cell(p.S, p.A)
	case predicate.KVal, predicate.KML:
		cell(p.T, p.A)
	case predicate.KPredict, predicate.KCorr:
		cell(p.T, p.B)
	}
	return e
}
