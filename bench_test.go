// Package rockbench holds the testing.B benchmarks that regenerate the
// paper's evaluation (one bench per table/figure panel; see DESIGN.md's
// experiment index). Run with:
//
//	go test -bench=. -benchmem
//
// Each bench times the hot path of one panel; cmd/rockbench prints the
// full row/series tables (go run ./cmd/rockbench -exp all). Inputs are
// intentionally small so a full -bench=. sweep stays laptop-fast; scale
// with rockbench's -n flag for larger runs.
package rockbench

import (
	"fmt"
	"testing"

	"github.com/rockclean/rock/internal/baselines"
	"github.com/rockclean/rock/internal/chase"
	"github.com/rockclean/rock/internal/detect"
	"github.com/rockclean/rock/internal/discovery"
	"github.com/rockclean/rock/internal/quality"
	"github.com/rockclean/rock/internal/workload"
)

const benchN = 200

func benchConfig() workload.Config { return workload.Config{N: benchN, Seed: 2024} }

// --- Exp-1: rule discovery (Figures 4(a)-(c)) ---

func benchDiscovery(b *testing.B, ds *workload.Dataset, sys baselines.System) {
	b.Helper()
	bench := baselines.NewBench(ds, 4)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := sys.Discover(bench); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig4aBankDiscovery(b *testing.B) {
	benchDiscovery(b, workload.Bank(benchConfig()), baselines.Rock())
}

func BenchmarkFig4aBankDiscoveryES(b *testing.B) {
	benchDiscovery(b, workload.Bank(benchConfig()), baselines.NewES())
}

func BenchmarkFig4bLogisticsDiscovery(b *testing.B) {
	benchDiscovery(b, workload.Logistics(benchConfig()), baselines.Rock())
}

func BenchmarkFig4cSalesDiscovery(b *testing.B) {
	benchDiscovery(b, workload.Sales(benchConfig()), baselines.Rock())
}

// --- Exp-2: error detection (Figures 4(d)-(h)) ---

func benchDetect(b *testing.B, ds *workload.Dataset, sys baselines.System) {
	b.Helper()
	bench := baselines.NewBench(ds, 4)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := sys.Detect(bench); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig4dBankDetect(b *testing.B) {
	benchDetect(b, workload.Bank(benchConfig()), baselines.Rock())
}

func BenchmarkFig4eLogisticsDetect(b *testing.B) {
	benchDetect(b, workload.Logistics(benchConfig()), baselines.Rock())
}

func BenchmarkFig4fSalesDetect(b *testing.B) {
	benchDetect(b, workload.Sales(benchConfig()), baselines.Rock())
}

func BenchmarkFig4gDetectionTimeRock(b *testing.B) {
	benchDetect(b, workload.Bank(benchConfig()), baselines.Rock())
}

func BenchmarkFig4gDetectionTimeSparkSQL(b *testing.B) {
	benchDetect(b, workload.Bank(benchConfig()), baselines.NewSparkSQL())
}

func BenchmarkFig4gDetectionTimeT5s(b *testing.B) {
	benchDetect(b, workload.Bank(benchConfig()), baselines.NewT5s())
}

func BenchmarkFig4gDetectionTimeRB(b *testing.B) {
	benchDetect(b, workload.Bank(benchConfig()), baselines.NewRB())
}

// BenchmarkFig4hScaleDetect times the simulated-makespan pipeline behind
// Figure 4(h); the per-n series prints via `rockbench -exp fig4h`.
func BenchmarkFig4hScaleDetect(b *testing.B) {
	ds := workload.Logistics(benchConfig())
	bench := baselines.NewBench(ds, 20)
	o := detect.DefaultOptions()
	o.Workers = 20
	d := detect.New(bench.Env, bench.Rules, o)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := d.DetectSimulated(); err != nil {
			b.Fatal(err)
		}
	}
}

// --- Exp-3: error correction (Figures 4(i)-(l)) ---

func benchCorrect(b *testing.B, mk func() *workload.Dataset, sys baselines.System) {
	b.Helper()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		bench := baselines.NewBench(mk(), 4) // fresh clone: Correct mutates
		b.StartTimer()
		if _, err := sys.Correct(bench); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig4iCorrectRock(b *testing.B) {
	benchCorrect(b, func() *workload.Dataset { return workload.Bank(benchConfig()) }, baselines.Rock())
}

func BenchmarkFig4jSalesTasksCorrect(b *testing.B) {
	benchCorrect(b, func() *workload.Dataset { return workload.Sales(benchConfig()) }, baselines.Rock())
}

func BenchmarkFig4kCorrectRock(b *testing.B) {
	benchCorrect(b, func() *workload.Dataset { return workload.Bank(benchConfig()) }, baselines.Rock())
}

func BenchmarkFig4kCorrectRockSeq(b *testing.B) {
	benchCorrect(b, func() *workload.Dataset { return workload.Bank(benchConfig()) }, baselines.RockSeq())
}

func BenchmarkFig4kCorrectSparkSQL(b *testing.B) {
	benchCorrect(b, func() *workload.Dataset { return workload.Bank(benchConfig()) }, baselines.NewSparkSQL())
}

func BenchmarkFig4lScaleCorrect(b *testing.B) {
	ds := workload.Logistics(benchConfig())
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		bench := baselines.NewBench(ds, 20)
		opts := chase.DefaultOptions()
		opts.Workers = 20
		opts.Oracle = bench.GoldOracle()
		eng := chase.New(bench.Env, bench.Rules, bench.DS.Gamma, opts)
		b.StartTimer()
		if _, err := eng.Run(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkChaseParallel measures the real wall-clock of the chase with
// work units executed on a goroutine pool of 1, 2, 4, and 8 workers
// (Figure 4(l), but genuinely parallel rather than simulated). The
// speedup observed scales with the physical cores of the host: on a
// single-core machine the variants only measure pool overhead, so the
// simulated SimMakespan metric remains the cluster-scaling proxy.
func BenchmarkChaseParallel(b *testing.B) {
	workloads := []struct {
		name string
		mk   func() *workload.Dataset
	}{
		{"ecommerce", workload.Ecommerce},
		{"logistics", func() *workload.Dataset { return workload.Logistics(benchConfig()) }},
	}
	for _, wl := range workloads {
		ds := wl.mk()
		for _, workers := range []int{1, 2, 4, 8} {
			b.Run(fmt.Sprintf("%s/workers=%d", wl.name, workers), func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					b.StopTimer()
					bench := baselines.NewBench(ds, workers)
					opts := chase.DefaultOptions()
					opts.Workers = workers
					opts.Parallel = workers > 1
					opts.Oracle = bench.GoldOracle()
					eng := chase.New(bench.Env, bench.Rules, bench.DS.Gamma, opts)
					b.StartTimer()
					if _, err := eng.Run(); err != nil {
						b.Fatal(err)
					}
				}
			})
		}
	}
}

// --- Ablation benches (DESIGN.md design choices) ---

// BenchmarkAblationBlocking vs BenchmarkAblationNoBlocking: the LSH
// filter-and-verify strategy for ML predicates (paper §5.4).
func BenchmarkAblationBlocking(b *testing.B) {
	benchDetect(b, workload.Bank(benchConfig()), baselines.Rock())
}

func BenchmarkAblationNoBlocking(b *testing.B) {
	v := baselines.Rock()
	v.Blocking = false
	v.VariantName = "Rock_noblock"
	benchDetect(b, workload.Bank(benchConfig()), v)
}

// BenchmarkAblationLazyChase vs BenchmarkAblationEagerChase: lazy rule
// activation + dirty-tuple filtering (paper §4.1).
func BenchmarkAblationLazyChase(b *testing.B) {
	benchCorrect(b, func() *workload.Dataset { return workload.Bank(benchConfig()) }, baselines.Rock())
}

func BenchmarkAblationEagerChase(b *testing.B) {
	v := baselines.Rock()
	v.Lazy = false
	v.VariantName = "Rock_eager"
	benchCorrect(b, func() *workload.Dataset { return workload.Bank(benchConfig()) }, v)
}

// BenchmarkAblationSampling vs BenchmarkAblationNoSampling: multi-round
// sampled discovery (paper §5.2).
func BenchmarkAblationSampling(b *testing.B) {
	ds := workload.Bank(benchConfig())
	bench := baselines.NewBench(ds, 4)
	opts := discovery.DefaultOptions()
	opts.SampleRatio = 0.3
	opts.MaxPairs = 30000
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m := discovery.NewMiner(bench.Env, "Customer", opts)
		if _, _, err := m.Discover(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkAblationNoSampling(b *testing.B) {
	ds := workload.Bank(benchConfig())
	bench := baselines.NewBench(ds, 4)
	opts := discovery.DefaultOptions()
	opts.SampleRatio = 1.0
	opts.MaxPairs = 120000
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m := discovery.NewMiner(bench.Env, "Customer", opts)
		if _, _, err := m.Discover(); err != nil {
			b.Fatal(err)
		}
	}
}

// --- accuracy guards: the paper's quality claims hold at bench scale ---

func TestBenchShapeRockBeatsBaselinesOnCorrection(t *testing.T) {
	if testing.Short() {
		t.Skip("integration shape check")
	}
	score := func(sys baselines.System) float64 {
		bench := baselines.NewBench(workload.Bank(benchConfig()), 4)
		corr, err := sys.Correct(bench)
		if err != nil {
			t.Fatal(err)
		}
		return quality.ScoreCorrection(bench.DS.Gold, corr, bench.RawValue).Overall().F1()
	}
	rock := score(baselines.Rock())
	noC := score(baselines.RockNoC())
	rb := score(baselines.NewRB())
	t.Logf("correction F1 at bench scale: Rock=%.3f Rock_noC=%.3f RB=%.3f", rock, noC, rb)
	if rock <= rb || rock < noC {
		t.Errorf("paper shape violated: Rock=%.3f Rock_noC=%.3f RB=%.3f", rock, noC, rb)
	}
}
