module github.com/rockclean/rock

go 1.22
